// Combined software + lightweight hardware mitigation (paper §VII:
// "Our ongoing work is exploring how these software techniques can be
// combined with lightweight hardware-based techniques").
//
// Sweeps the thermal-sentinel quarantine budget for both the Original and a
// noise-aware robust model under a 5 % hotspot attack, showing that the two
// defenses compose.
//
// Usage: hardware_mitigation [cnn1|resnet18|vgg16v] [robust_variant]

#include <cstdio>
#include <string>

#include "common/config.hpp"
#include "accel/executor.hpp"
#include "attacks/corruption.hpp"
#include "core/report.hpp"
#include "core/zoo.hpp"
#include "nn/serialize.hpp"

namespace sl = safelight;

namespace {

double attacked_accuracy(sl::nn::Sequential& model,
                         const sl::core::ExperimentSetup& setup,
                         const sl::nn::Dataset& eval_data,
                         double spare_fraction, std::size_t seeds) {
  const auto snapshot = sl::nn::snapshot_state(model);
  double sum = 0.0;
  for (std::size_t s = 0; s < seeds; ++s) {
    sl::nn::restore_state(model, snapshot);
    sl::accel::WeightStationaryMapping mapping(model, setup.accelerator);
    sl::attack::AttackScenario scenario;
    scenario.vector = sl::attack::AttackVector::kHotspot;
    scenario.target = sl::attack::AttackTarget::kBothBlocks;
    scenario.fraction = 0.05;
    scenario.seed = 9000 + s;
    sl::attack::CorruptionConfig corruption;
    corruption.quarantine.enabled = spare_fraction > 0.0;
    corruption.quarantine.spare_bank_fraction = spare_fraction;
    sl::attack::apply_attack(mapping, scenario, corruption);
    sl::accel::OnnExecutor executor(setup.accelerator);
    sum += executor.evaluate(model, eval_data);
  }
  sl::nn::restore_state(model, snapshot);
  return sum / static_cast<double>(seeds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "cnn1";
  const std::string variant_name = argc > 2 ? argv[2] : "l2+n3";
  const sl::nn::ModelId id = sl::nn::model_id_from_string(model_name);
  const sl::Scale scale = sl::config::scale() == sl::Scale::kDefault
                              ? sl::Scale::kTiny
                              : sl::config::scale();
  const sl::core::ExperimentSetup setup = sl::core::experiment_setup(id, scale);

  std::printf(
      "SafeLight combined mitigation demo: %s (%s scale), robust variant "
      "%s,\n5%% hotspot attack on CONV+FC\n\n",
      model_name.c_str(), sl::to_string(scale).c_str(), variant_name.c_str());

  sl::core::ModelZoo zoo;
  auto original =
      zoo.get_or_train(setup, sl::core::variant_by_name("Original"), true);
  auto robust =
      zoo.get_or_train(setup, sl::core::variant_by_name(variant_name), true);
  const sl::nn::Dataset eval_data =
      sl::core::make_test_data(setup).take(setup.eval_count);

  sl::core::TextTable table({"spare banks", "Original",
                             "software (" + variant_name + ")",
                             "software + hardware"});
  const std::size_t seeds = 3;
  for (double spare : {0.0, 0.02, 0.05, 0.10}) {
    const double orig_hw =
        attacked_accuracy(*original, setup, eval_data, spare, seeds);
    const double robust_hw =
        attacked_accuracy(*robust, setup, eval_data, spare, seeds);
    const double robust_sw_only =
        spare == 0.0
            ? robust_hw
            : attacked_accuracy(*robust, setup, eval_data, 0.0, seeds);
    table.add_row({sl::core::pct(spare), sl::core::pct(orig_hw),
                   sl::core::pct(robust_sw_only), sl::core::pct(robust_hw)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "the defenses compose: noise-aware training absorbs the residual\n"
      "sub-threshold corruption the sentinels cannot detect, and quarantine\n"
      "removes the catastrophic cluster corruption training cannot absorb.\n");
  return 0;
}
