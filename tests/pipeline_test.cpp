// Tests for the scenario pipeline and its result store: fan-out determinism
// (parallel == serial == repeated run), resume-after-interrupt through the
// persistent store, and clean-baseline deduplication.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "core/result_store.hpp"
#include "core/susceptibility.hpp"
#include "test_util.hpp"

namespace safelight::core {
namespace {

ExperimentSetup tiny_setup() {
  return experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
}

std::vector<attack::AttackScenario> small_grid(std::size_t seeds = 2) {
  return attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kBothBlocks}, {0.05, 0.10}, seeds, 100);
}

// ------------------------------------------------------------ writer lock

TEST(StoreWriterLock, SecondLiveWriterFailsFastNamingTheOwner) {
  TempDir dir("store_lock");
  const std::string path = dir.path() + "/store.csv";
  ResultStore first(path);
  EXPECT_TRUE(std::filesystem::exists(path + ".lock"));
  try {
    ResultStore second(path);
    FAIL() << "second live writer must not acquire the lock";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("locked by live process"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(::getpid())), std::string::npos)
        << what;
    EXPECT_NE(what.find(path + ".lock"), std::string::npos) << what;
  }
}

TEST(StoreWriterLock, ReleasedOnDestructionAndReacquirable) {
  TempDir dir("store_lock_release");
  const std::string path = dir.path() + "/store.csv";
  { ResultStore store(path); }
  EXPECT_FALSE(std::filesystem::exists(path + ".lock"));
  testing::internal::CaptureStderr();
  ResultStore reopened(path);
  // A clean handover is silent: no stale-takeover warning.
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_TRUE(std::filesystem::exists(path + ".lock"));
}

TEST(StoreWriterLock, StaleLockFromDeadWriterIsTakenOverWithWarning) {
  TempDir dir("store_lock_stale");
  const std::string path = dir.path() + "/store.csv";
  // A crashed writer never runs destructors: fabricate its leftover lock
  // with a pid that is guaranteed dead (fork + _Exit + waitpid = reaped).
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) std::_Exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  { std::ofstream(path + ".lock") << child << "\n"; }

  testing::internal::CaptureStderr();
  ResultStore store(path);
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("taking over stale lock"), std::string::npos)
      << warning;
  EXPECT_NE(warning.find(std::to_string(child)), std::string::npos) << warning;
  store.put("k", 0.5);
  EXPECT_TRUE(store.contains("k"));
}

TEST(StoreWriterLock, UnparsableLockBodyReadsAsStale) {
  TempDir dir("store_lock_garbage");
  const std::string path = dir.path() + "/store.csv";
  { std::ofstream(path + ".lock") << "not-a-pid\n"; }
  testing::internal::CaptureStderr();
  ResultStore store(path);  // must not throw
  EXPECT_NE(testing::internal::GetCapturedStderr().find("stale lock"),
            std::string::npos);
}

TEST(StoreWriterLock, InMemoryStoreTakesNoLock) {
  ResultStore a("");
  ResultStore b("");  // two in-memory stores coexist: nothing to lock
  a.put("k", 1.0);
  EXPECT_FALSE(b.contains("k"));
}

// ------------------------------------------------------- raw entry reading

TEST(ReadStoreEntries, ReturnsRawBytesSkipsJunkLaterDuplicateWins) {
  TempDir dir("read_entries");
  const std::string path = dir.path() + "/store.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "key,accuracy\n"          // header: skipped
        << "a/1,0.5\n"               // kept
        << "not a row\n"             // malformed: skipped
        << "b,with,commas/2,0.25\n"  // key itself has commas: kept
        << "a/1,0.75\n"              // duplicate: later value wins, in place
        << "torn/3,0.1";             // no newline: torn tail, skipped
  }
  const auto entries = read_store_entries(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "a/1");
  EXPECT_EQ(entries[0].value, "0.75");  // raw bytes, exactly as written
  EXPECT_EQ(entries[1].key, "b,with,commas/2");
  EXPECT_EQ(entries[1].value, "0.25");
  // Read-only: the torn tail is still on disk afterwards.
  std::ifstream in(path, std::ios::binary);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("torn/3,0.1"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".lock"));  // and lock-free
}

TEST(ReadStoreEntries, MissingFileReadsAsEmpty) {
  EXPECT_TRUE(read_store_entries("/nonexistent/store.csv").empty());
}

TEST(ReadStoreEntries, RoundTripsResultStoreOutputBytes) {
  TempDir dir("read_entries_roundtrip");
  const std::string path = dir.path() + "/store.csv";
  {
    ResultStore store(path);
    store.put("k/1", 197.0 / 300.0);
  }
  const auto entries = read_store_entries(path);
  ASSERT_EQ(entries.size(), 1u);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%.17g", 197.0 / 300.0);
  EXPECT_EQ(entries[0].value, expected);
}

// ------------------------------------------------------------ result store

TEST(ResultStore, InMemoryPutLookup) {
  ResultStore store("");
  EXPECT_FALSE(store.lookup("a").has_value());
  store.put("a", 0.5);
  store.put("b", 0.25);
  ASSERT_TRUE(store.lookup("a").has_value());
  EXPECT_DOUBLE_EQ(*store.lookup("a"), 0.5);
  EXPECT_TRUE(store.contains("b"));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ResultStore, PersistsAndResumes) {
  TempDir dir("result_store");
  const std::string path = dir.path() + "/store.csv";
  {
    ResultStore store(path);
    store.put("x/1", 0.75);
    store.put("x/2", 0.5);
  }
  // A new instance (fresh process in real life) resumes from disk.
  ResultStore resumed(path);
  EXPECT_EQ(resumed.size(), 2u);
  ASSERT_TRUE(resumed.lookup("x/1").has_value());
  EXPECT_NEAR(*resumed.lookup("x/1"), 0.75, 1e-9);
}

TEST(ResultStore, ToleratesTornTrailingRow) {
  TempDir dir("result_store_torn");
  const std::string path = dir.path() + "/store.csv";
  {
    ResultStore store(path);
    store.put("good/1", 0.5);
    store.put("good/2", 0.25);
  }
  // Simulate a mid-write kill: append a torn, value-less final line.
  {
    std::ofstream out(path, std::ios::app);
    out << "torn/3,0.1";  // no newline; then truncate mid-value
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 2);
  {
    ResultStore resumed(path);
    EXPECT_EQ(resumed.size(), 2u);  // torn row skipped, good rows intact
    EXPECT_TRUE(resumed.contains("good/1"));
    EXPECT_FALSE(resumed.contains("torn/3"));
  }

  // Full-precision round trip: a repeating-decimal accuracy (k/300) must
  // come back bit-identical after resume.
  const double awkward = 197.0 / 300.0;
  {
    ResultStore store(path);
    store.put("awkward", awkward);
  }
  ResultStore reloaded(path);
  ASSERT_TRUE(reloaded.lookup("awkward").has_value());
  EXPECT_DOUBLE_EQ(*reloaded.lookup("awkward"), awkward);
}

TEST(ResultStore, PropertyResumesFromEveryTruncationOffset) {
  // Property: for *every* byte offset a mid-write kill could leave the
  // store file at, a fresh ResultStore (a) loads exactly the rows whose
  // terminating newline survived, (b) never loads a torn or merged row,
  // and (c) keeps accepting appends whose reload round-trips — the cleanly
  // flushed case is just the offset == size corner.
  TempDir dir("result_store_property");
  const std::string path = dir.path() + "/store.csv";
  const std::vector<std::pair<std::string, double>> rows = {
      {"a/1", 0.5},           {"b,with,commas/2", 197.0 / 300.0},
      {"c/3", -1.25e-7},      {"d/4", 1.0},
      {"e/long/key/5", 0.75},
  };
  {
    ResultStore store(path);
    for (const auto& [key, value] : rows) store.put(key, value);
  }
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(content.empty());

  for (std::size_t offset = 0; offset <= content.size(); ++offset) {
    // Rows wholly contained in the first `offset` bytes survive. Walking
    // the original content keeps this oracle independent of the parser.
    std::size_t expected = 0;
    for (std::size_t pos = 0; pos < offset;) {
      const std::size_t newline = content.find('\n', pos);
      if (newline == std::string::npos || newline >= offset) break;
      if (content.substr(pos, newline - pos) != "key,accuracy") ++expected;
      pos = newline + 1;
    }

    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content.substr(0, offset);
    }
    {
      ResultStore resumed(path);
      EXPECT_EQ(resumed.size(), expected) << "offset " << offset;
      std::size_t found = 0;
      for (const auto& [key, value] : rows) {
        const auto loaded = resumed.lookup(key);
        if (!loaded.has_value()) continue;
        ++found;
        EXPECT_DOUBLE_EQ(*loaded, value) << key << " at offset " << offset;
      }
      EXPECT_EQ(found, expected) << "offset " << offset;  // no foreign rows

      // The torn tail was truncated away on load: appending now must not
      // merge into it, and the appended entry must round-trip.
      resumed.put("fresh/after/tear", 0.375);
    }
    ResultStore reloaded(path);
    EXPECT_EQ(reloaded.size(), expected + 1) << "offset " << offset;
    ASSERT_TRUE(reloaded.lookup("fresh/after/tear").has_value());
    EXPECT_DOUBLE_EQ(*reloaded.lookup("fresh/after/tear"), 0.375);
  }
}

TEST(ResultStore, TruncatedJsonlMirrorNeverAffectsResume) {
  // The JSONL mirror is write-only telemetry: a record torn by a mid-write
  // kill must neither break CSV resume nor stop the mirror from appending.
  TempDir dir("result_store_jsonl_torn");
  const std::string csv = dir.path() + "/store.csv";
  const std::string jsonl = dir.path() + "/store.jsonl";
  {
    ResultStore store(csv, jsonl);
    store.put("k/1", 0.5);
    store.put("k/2", 0.25);
  }
  // Tear the mirror mid-record.
  std::filesystem::resize_file(jsonl, std::filesystem::file_size(jsonl) / 2);

  ResultStore resumed(csv, jsonl);
  EXPECT_EQ(resumed.size(), 2u);  // resume reads the CSV, not the mirror
  resumed.put("k/3", 0.125);
  std::ifstream in(jsonl);
  std::string line, last;
  while (std::getline(in, line)) last = line;
  EXPECT_NE(last.find("\"key\":\"k/3\""), std::string::npos);
}

TEST(ResultStore, OpenSweepsOrphanedTempFilesWithAWarning) {
  // A crash between nn::save_model's tmp write and its atomic rename
  // leaves `<target>.tmp` behind; nothing else ever reclaims it. Opening a
  // store in that directory (one live writer by contract) must delete
  // exactly the orphans, warn about each, and leave real files alone.
  TempDir dir("result_store_orphans");
  const std::string orphan = dir.path() + "/model.slw.tmp";
  const std::string keeper = dir.path() + "/model.slw";
  const std::string decoy_dir = dir.path() + "/subdir.tmp";
  { std::ofstream(orphan) << "half-written weights"; }
  { std::ofstream(keeper) << "committed weights"; }
  std::filesystem::create_directories(decoy_dir);  // not a regular file

  testing::internal::CaptureStderr();
  { ResultStore store(dir.path() + "/store.csv"); }
  const std::string warning = testing::internal::GetCapturedStderr();

  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(keeper));
  EXPECT_TRUE(std::filesystem::exists(decoy_dir));
  EXPECT_EQ(warning, "[store] removed orphaned temp file " + orphan +
                         " (left by an interrupted writer)\n");

  // A second open has nothing left to sweep.
  testing::internal::CaptureStderr();
  ResultStore reopened(dir.path() + "/store.csv");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(ResultStore, StreamsJsonlMirror) {
  TempDir dir("result_store_jsonl");
  const std::string csv = dir.path() + "/store.csv";
  const std::string jsonl = dir.path() + "/store.jsonl";
  ResultStore store(csv, jsonl);
  store.put("k", 0.125);
  std::ifstream in(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"key\":\"k\""), std::string::npos);
  EXPECT_NE(line.find("0.125"), std::string::npos);
}

// ---------------------------------------------------------------- pipeline

TEST(Pipeline, DeterministicAcrossRunsAndMatchesSerial) {
  TempDir zoo_dir("pipeline_determinism");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(zoo_dir.path());
  const auto grid = small_grid();

  // Parallel run, no persistence.
  ScenarioPipeline parallel_pipeline(setup, zoo, {});
  const SweepResult a = parallel_pipeline.run(variant_by_name("Original"), grid);

  // Second run from scratch: identical accuracies in identical order.
  const SweepResult b = parallel_pipeline.run(variant_by_name("Original"), grid);
  ASSERT_EQ(a.rows.size(), grid.size());
  ASSERT_EQ(b.rows.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.rows[i].scenario.id(), grid[i].id());
    EXPECT_DOUBLE_EQ(a.rows[i].accuracy, b.rows[i].accuracy) << grid[i].id();
  }
  EXPECT_DOUBLE_EQ(a.baseline_accuracy, b.baseline_accuracy);

  // Forced-serial run agrees with the fan-out (same seeds -> same results).
  PipelineOptions serial_options;
  serial_options.max_workers = 1;
  ScenarioPipeline serial_pipeline(setup, zoo, serial_options);
  const SweepResult serial =
      serial_pipeline.run(variant_by_name("Original"), grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.rows[i].accuracy, a.rows[i].accuracy)
        << grid[i].id();
  }

  // And the serial reference path (AttackEvaluator loop) agrees too.
  auto model = zoo.get_or_train(setup, variant_by_name("Original"));
  AttackEvaluator evaluator(setup, *model, "Original", "");
  const auto reference = evaluate_grid(evaluator, grid, /*verbose=*/false);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(reference[i].accuracy, a.rows[i].accuracy)
        << grid[i].id();
  }
}

TEST(Pipeline, ResumesFromPersistedStore) {
  TempDir dir("pipeline_resume");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());
  const auto grid = small_grid();

  PipelineOptions options;
  options.cache_dir = dir.path();
  ScenarioPipeline pipeline(setup, zoo, options);
  const SweepResult first = pipeline.run(variant_by_name("Original"), grid);
  EXPECT_EQ(first.evaluated, grid.size());
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_FALSE(first.baseline_from_cache);

  // A second pipeline instance (simulating a restarted process) evaluates
  // nothing: every scenario and the baseline come from the store.
  ScenarioPipeline resumed(setup, zoo, options);
  const SweepResult second = resumed.run(variant_by_name("Original"), grid);
  EXPECT_EQ(second.evaluated, 0u);
  EXPECT_EQ(second.cache_hits, grid.size());
  EXPECT_TRUE(second.baseline_from_cache);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.rows[i].accuracy, first.rows[i].accuracy);
  }

  // Interrupt simulation: delete one row from the store file; only that
  // scenario is re-evaluated, and it reproduces the original value.
  std::string store_file;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().string().find(".sweep.csv") != std::string::npos) {
      store_file = entry.path().string();
    }
  }
  ASSERT_FALSE(store_file.empty());
  std::vector<std::string> lines;
  {
    std::ifstream in(store_file);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  const std::string dropped = lines.back();
  lines.pop_back();
  {
    std::ofstream out(store_file, std::ios::trunc);
    for (const auto& line : lines) out << line << '\n';
  }
  ScenarioPipeline after_interrupt(setup, zoo, options);
  const SweepResult third = after_interrupt.run(variant_by_name("Original"), grid);
  EXPECT_EQ(third.evaluated, 1u);
  EXPECT_EQ(third.cache_hits, grid.size() - 1);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(third.rows[i].accuracy, first.rows[i].accuracy);
  }
  (void)dropped;
}

TEST(Pipeline, DeduplicatesBaselineAndRepeatedScenarios) {
  TempDir dir("pipeline_dedup");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());

  // A grid that repeats the same scenario: evaluated once, reported twice.
  auto grid = small_grid(1);
  const std::size_t unique_count = grid.size();
  grid.insert(grid.end(), grid.begin(), grid.begin() + 2);

  PipelineOptions options;
  options.cache_dir = dir.path();
  ScenarioPipeline pipeline(setup, zoo, options);
  const SweepResult sweep = pipeline.run(variant_by_name("Original"), grid);
  EXPECT_EQ(sweep.evaluated, unique_count);
  ASSERT_EQ(sweep.rows.size(), unique_count + 2);
  EXPECT_DOUBLE_EQ(sweep.rows[0].accuracy, sweep.rows[unique_count].accuracy);

  // The store holds exactly one baseline entry, shared by both sweeps of
  // this variant (the second run reads, never re-evaluates).
  const SweepResult again = pipeline.run(variant_by_name("Original"), grid);
  EXPECT_TRUE(again.baseline_from_cache);
  EXPECT_DOUBLE_EQ(again.baseline_accuracy, sweep.baseline_accuracy);
}

TEST(Pipeline, CorruptionConfigSeparatesStores) {
  TempDir dir("pipeline_corruption");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());
  const auto grid = attack::scenario_grid(
      {attack::AttackVector::kActuation},
      {attack::AttackTarget::kBothBlocks}, {0.10}, 1, 100);

  PipelineOptions default_options;
  default_options.cache_dir = dir.path();
  ScenarioPipeline default_pipeline(setup, zoo, default_options);
  const SweepResult default_sweep =
      default_pipeline.run(variant_by_name("Original"), grid);

  // Ablated physics (tiny park distance ~= stuck-at-zero) must not reuse
  // the default-physics cache entries.
  PipelineOptions ablated_options = default_options;
  ablated_options.corruption.actuation.park_spacing_fraction = 0.02;
  ScenarioPipeline ablated_pipeline(setup, zoo, ablated_options);
  const SweepResult ablated_sweep =
      ablated_pipeline.run(variant_by_name("Original"), grid);
  EXPECT_EQ(ablated_sweep.evaluated, grid.size());  // no cross-config hits

  std::size_t store_count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().string().find(".sweep.csv") != std::string::npos) {
      ++store_count;
    }
  }
  EXPECT_EQ(store_count, 2u);
  (void)default_sweep;
}

}  // namespace
}  // namespace safelight::core
