// Tests for src/common: rng, stats, parallel, csv, env.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <optional>
#include <set>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace safelight {
namespace {

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, GaussianZeroStddevIsMean) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.gaussian(5.0, 0.0), 5.0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(13);
  auto perm = rng.permutation(50);
  std::sort(perm.begin(), perm.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(perm[i], i);
}

TEST(Rng, SampleRejectsOverdraw) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(77);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(1);  // second fork advances parent state
  EXPECT_NE(childA.uniform(), childB.uniform());
}

TEST(Rng, SeedCombineMixes) {
  EXPECT_NE(seed_combine(1, 2, 3), seed_combine(1, 3, 2));
  EXPECT_NE(seed_combine(1, 2), seed_combine(2, 1));
  EXPECT_EQ(seed_combine(9, 8, 7), seed_combine(9, 8, 7));
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
  EXPECT_NEAR(stddev_of(v), 2.138, 1e-3);
}

TEST(Stats, StddevOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(stddev_of({3.0}), 0.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_NEAR(quantile(v, 0.25), 1.75, 1e-12);
}

TEST(Stats, BoxStatsFiveNumberSummary) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  const BoxStats s = box_stats(v);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.iqr(), 2.0);
}

TEST(Stats, BoxStatsConstantInput) {
  const BoxStats s = box_stats({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, EmptyInputsThrow) {
  EXPECT_THROW(mean_of({}), std::invalid_argument);
  EXPECT_THROW(box_stats({}), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, QuantileRejectsBadQ) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Stats, ToStringMentionsAllFields) {
  const std::string s = box_stats({1.0, 2.0, 3.0}).to_string();
  EXPECT_NE(s.find("min="), std::string::npos);
  EXPECT_NE(s.find("med="), std::string::npos);
  EXPECT_NE(s.find("n=3"), std::string::npos);
}

// ---------------------------------------------------------------- parallel

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ChunksPartitionRange) {
  std::atomic<std::size_t> total{0};
  parallel_for_chunks(10, 110, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, NestedCallsDegradeSerially) {
  // A nested parallel_for inside a worker must not deadlock or misbehave.
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 10, [&](std::size_t) { count++; }, 1);
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(Parallel, WorkerCountPositive) { EXPECT_GE(worker_count(), 1u); }

TEST(Parallel, SerialBelowTwoGrains) {
  // Documented contract: a range shorter than min_grain * 2 runs serially,
  // i.e. fn is invoked exactly once with the whole range — independent of
  // how many workers the host grants.
  const std::size_t grain = 8;
  std::atomic<int> calls{0};
  parallel_for_chunks(
      0, 2 * grain - 1,
      [&](std::size_t lo, std::size_t hi) {
        calls++;
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 2 * grain - 1);
      },
      grain);
  EXPECT_EQ(calls.load(), 1);
}

TEST(Parallel, ParallelChunksRespectMinGrain) {
  // At or above two grains the split may fan out, but every chunk except
  // possibly the tail must span at least min_grain indices. A total that
  // divides by nothing relevant exercises the tail-chunk case.
  const std::size_t grain = 8;
  const std::size_t end = 10 * grain + 3;
  std::atomic<std::size_t> covered{0};
  parallel_for_chunks(
      0, end,
      [&](std::size_t lo, std::size_t hi) {
        if (hi != end) {
          EXPECT_GE(hi - lo, grain);
        }
        covered += hi - lo;
      },
      grain);
  EXPECT_EQ(covered.load(), end);
}

// ---------------------------------------------------------------- csv

TEST(Csv, RoundTrip) {
  const std::string path = "/tmp/safelight_csv_test.csv";
  {
    CsvWriter writer(path, {"a", "b"});
    writer.row({"1", "x"});
    writer.row_values({2.5, 3.25});
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][1], "x");
  EXPECT_DOUBLE_EQ(std::stod(table.rows[1][0]), 2.5);
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileGivesEmptyTable) {
  const CsvTable table = read_csv("/tmp/safelight_does_not_exist_12345.csv");
  EXPECT_TRUE(table.header.empty());
  EXPECT_TRUE(table.rows.empty());
}

TEST(Csv, RaggedRowThrows) {
  const std::string path = "/tmp/safelight_csv_bad.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2,3\n";
  }
  EXPECT_THROW(read_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Csv, QuotedFieldWithComma) {
  const std::string path = "/tmp/safelight_csv_quoted.csv";
  {
    std::ofstream out(path);
    out << "a,b\n\"x,y\",2\n";
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "x,y");
  std::filesystem::remove(path);
}

TEST(Csv, FmtDoublePrecision) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(2.0, 4), "2.0000");
}

// ---------------------------------------------------------------- env

TEST(Env, StringFallback) {
  unsetenv("SAFELIGHT_TEST_VAR");
  EXPECT_EQ(env_string("SAFELIGHT_TEST_VAR", "dflt"), "dflt");
  setenv("SAFELIGHT_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("SAFELIGHT_TEST_VAR", "dflt"), "hello");
  unsetenv("SAFELIGHT_TEST_VAR");
}

TEST(Env, IntParsingAndFallback) {
  setenv("SAFELIGHT_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("SAFELIGHT_TEST_INT", 7), 42);
  setenv("SAFELIGHT_TEST_INT", "not_a_number", 1);
  EXPECT_EQ(env_int("SAFELIGHT_TEST_INT", 7), 7);
  unsetenv("SAFELIGHT_TEST_INT");
}

TEST(Env, ScaleParsing) {
  setenv("SAFELIGHT_SCALE", "tiny", 1);
  EXPECT_EQ(env_scale(), Scale::kTiny);
  setenv("SAFELIGHT_SCALE", "full", 1);
  EXPECT_EQ(env_scale(), Scale::kFull);
  setenv("SAFELIGHT_SCALE", "bogus", 1);
  EXPECT_EQ(env_scale(), Scale::kDefault);
  unsetenv("SAFELIGHT_SCALE");
  EXPECT_EQ(env_scale(), Scale::kDefault);
}

TEST(Env, ScaleNames) {
  EXPECT_EQ(to_string(Scale::kTiny), "tiny");
  EXPECT_EQ(to_string(Scale::kDefault), "default");
  EXPECT_EQ(to_string(Scale::kFull), "full");
}

// ---------------------------------------------------------------- error

TEST(Error, RequireThrowsWithPrefix) {
  try {
    require(false, "something bad");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("something bad"),
              std::string::npos);
  }
}

TEST(Error, AssertMacroThrowsLogicError) {
  EXPECT_THROW(SAFELIGHT_ASSERT(false, "invariant"), std::logic_error);
  EXPECT_NO_THROW(SAFELIGHT_ASSERT(true, "fine"));
}

// ---------------------------------------------------------------- config

/// RAII env-var pin (process-wide; safe because gtest runs cases of one
/// binary serially).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_.c_str(), previous_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

TEST(Config, ScalePrecedenceCliOverEnvOverDefault) {
  ScopedEnv env("SAFELIGHT_SCALE", "tiny");
  EXPECT_EQ(config::scale(), Scale::kTiny);  // env beats default
  {
    config::Overrides cli;
    cli.scale = Scale::kFull;
    config::ScopedOverrides guard(cli);
    EXPECT_EQ(config::scale(), Scale::kFull);  // CLI beats env
  }
  EXPECT_EQ(config::scale(), Scale::kTiny);  // guard restored
}

TEST(Config, ScaleDefaultsWhenUnset) {
  ::unsetenv("SAFELIGHT_SCALE");
  EXPECT_EQ(config::scale(), Scale::kDefault);
}

TEST(Config, ScaleRejectsUnknownValueLoudly) {
  ScopedEnv env("SAFELIGHT_SCALE", "banana");
  EXPECT_THROW(config::scale(), std::invalid_argument);
  EXPECT_THROW(config::parse_scale("huge"), std::invalid_argument);
  try {
    config::parse_scale("huge");
  } catch (const std::invalid_argument& e) {
    // Actionable: names the valid values.
    EXPECT_NE(std::string(e.what()).find("tiny"), std::string::npos);
  }
}

TEST(Config, SeedCountPrecedenceAndValidation) {
  {
    ScopedEnv env("SAFELIGHT_SEEDS", "7");
    EXPECT_EQ(config::seed_count(3), 7u);  // env beats fallback
    config::Overrides cli;
    cli.seed_count = 5;
    config::ScopedOverrides guard(cli);
    EXPECT_EQ(config::seed_count(3), 5u);  // CLI beats env
  }
  ::unsetenv("SAFELIGHT_SEEDS");
  EXPECT_EQ(config::seed_count(3), 3u);  // per-experiment fallback
  {
    ScopedEnv zero("SAFELIGHT_SEEDS", "0");
    EXPECT_THROW(config::seed_count(3), std::invalid_argument);  // no clamp
  }
  // Non-numeric values fail loudly too, instead of env_int's silent
  // fall-back to the default.
  ScopedEnv junk("SAFELIGHT_SEEDS", "ten");
  EXPECT_THROW(config::seed_count(3), std::invalid_argument);
  ScopedEnv partial("SAFELIGHT_SEEDS", "3x10");
  EXPECT_THROW(config::seed_count(3), std::invalid_argument);
}

TEST(Config, DirectoryKnobsFollowPrecedence) {
  ScopedEnv env("SAFELIGHT_ZOO", "/tmp/safelight_test_cfg_env_zoo");
  EXPECT_EQ(config::zoo_dir(), "/tmp/safelight_test_cfg_env_zoo");
  config::Overrides cli;
  cli.zoo_dir = "/tmp/safelight_test_cfg_cli_zoo";
  cli.out_dir = "/tmp/safelight_test_cfg_cli_out";
  config::ScopedOverrides guard(cli);
  EXPECT_EQ(config::zoo_dir(), "/tmp/safelight_test_cfg_cli_zoo");
  EXPECT_EQ(config::out_dir(), "/tmp/safelight_test_cfg_cli_out");
  EXPECT_TRUE(std::filesystem::exists("/tmp/safelight_test_cfg_cli_out"));
  std::filesystem::remove_all("/tmp/safelight_test_cfg_cli_out");
}

TEST(Config, ThreadsAlwaysAtLeastOne) {
  ::unsetenv("SAFELIGHT_THREADS");
  EXPECT_GE(config::threads(), 1u);
  config::Overrides cli;
  cli.threads = 3;
  config::ScopedOverrides guard(cli);
  EXPECT_EQ(config::threads(), 3u);
}

TEST(Config, ThreadsRejectsBogusEnvValues) {
  {
    ScopedEnv junk("SAFELIGHT_THREADS", "abc");
    EXPECT_THROW(config::threads(), std::invalid_argument);
  }
  ScopedEnv negative("SAFELIGHT_THREADS", "-2");
  EXPECT_THROW(config::threads(), std::invalid_argument);
}

TEST(Config, FaultKnobsFollowPrecedence) {
  ::unsetenv("SAFELIGHT_FAULT_MODE");
  ::unsetenv("SAFELIGHT_FAULT_POINT");
  ::unsetenv("SAFELIGHT_FAULT_N");
  EXPECT_EQ(config::fault_mode(), "none");
  EXPECT_EQ(config::fault_point(), "");
  EXPECT_EQ(config::fault_n(), 1u);
  EXPECT_DOUBLE_EQ(config::fault_prob(), 0.0);
  EXPECT_EQ(config::fault_seed(), 1u);

  ScopedEnv mode("SAFELIGHT_FAULT_MODE", "run_length");
  ScopedEnv point("SAFELIGHT_FAULT_POINT", "store.csv.append");
  ScopedEnv n("SAFELIGHT_FAULT_N", "3");
  ScopedEnv prob("SAFELIGHT_FAULT_PROB", "0.25");
  ScopedEnv seed("SAFELIGHT_FAULT_SEED", "9");
  EXPECT_EQ(config::fault_mode(), "run_length");  // env beats default
  EXPECT_EQ(config::fault_point(), "store.csv.append");
  EXPECT_EQ(config::fault_n(), 3u);
  EXPECT_DOUBLE_EQ(config::fault_prob(), 0.25);
  EXPECT_EQ(config::fault_seed(), 9u);

  config::Overrides cli;
  cli.fault_mode = "uniform";
  cli.fault_point = "out.csv.row";
  cli.fault_n = 5;
  config::ScopedOverrides guard(cli);
  EXPECT_EQ(config::fault_mode(), "uniform");  // CLI beats env
  EXPECT_EQ(config::fault_point(), "out.csv.row");
  EXPECT_EQ(config::fault_n(), 5u);
}

TEST(Config, FaultKnobsRejectBogusEnvValues) {
  {
    ScopedEnv zero("SAFELIGHT_FAULT_N", "0");
    EXPECT_THROW(config::fault_n(), std::invalid_argument);
  }
  {
    ScopedEnv junk("SAFELIGHT_FAULT_N", "three");
    EXPECT_THROW(config::fault_n(), std::invalid_argument);
  }
  ScopedEnv junk_prob("SAFELIGHT_FAULT_PROB", "0.5x");
  EXPECT_THROW(config::fault_prob(), std::invalid_argument);
}

TEST(Config, StrictEnvIntContract) {
  ::unsetenv("SAFELIGHT_TEST_STRICT");
  EXPECT_FALSE(config::strict_env_int("SAFELIGHT_TEST_STRICT").has_value());
  {
    ScopedEnv valid("SAFELIGHT_TEST_STRICT", "-12");
    EXPECT_EQ(config::strict_env_int("SAFELIGHT_TEST_STRICT"), -12);
  }
  {
    ScopedEnv junk("SAFELIGHT_TEST_STRICT", "twelve");
    EXPECT_THROW(config::strict_env_int("SAFELIGHT_TEST_STRICT"),
                 std::invalid_argument);
  }
  // Trailing garbage is rejected — "3x10" must not quietly parse as 3.
  ScopedEnv partial("SAFELIGHT_TEST_STRICT", "3x10");
  try {
    config::strict_env_int("SAFELIGHT_TEST_STRICT");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    // The error names the variable so the user knows what to fix.
    EXPECT_NE(std::string(e.what()).find("SAFELIGHT_TEST_STRICT"),
              std::string::npos);
  }
}

TEST(Config, StrictEnvDoubleContract) {
  ::unsetenv("SAFELIGHT_TEST_STRICT");
  EXPECT_FALSE(config::strict_env_double("SAFELIGHT_TEST_STRICT").has_value());
  {
    ScopedEnv valid("SAFELIGHT_TEST_STRICT", "2.5e-1");
    EXPECT_DOUBLE_EQ(*config::strict_env_double("SAFELIGHT_TEST_STRICT"),
                     0.25);
  }
  {
    ScopedEnv junk("SAFELIGHT_TEST_STRICT", "abc");
    EXPECT_THROW(config::strict_env_double("SAFELIGHT_TEST_STRICT"),
                 std::invalid_argument);
  }
  ScopedEnv partial("SAFELIGHT_TEST_STRICT", "0.5seconds");
  try {
    config::strict_env_double("SAFELIGHT_TEST_STRICT");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("SAFELIGHT_TEST_STRICT"),
              std::string::npos);
  }
}

TEST(Config, HeartbeatTimeoutValidatedThroughStrictHelper) {
  ::unsetenv("SAFELIGHT_HEARTBEAT_TIMEOUT");
  EXPECT_DOUBLE_EQ(config::heartbeat_timeout_s(), 10.0);
  {
    ScopedEnv env("SAFELIGHT_HEARTBEAT_TIMEOUT", "2.5");
    EXPECT_DOUBLE_EQ(config::heartbeat_timeout_s(), 2.5);
  }
  {
    ScopedEnv junk("SAFELIGHT_HEARTBEAT_TIMEOUT", "soon");
    EXPECT_THROW(config::heartbeat_timeout_s(), std::invalid_argument);
  }
  ScopedEnv zero("SAFELIGHT_HEARTBEAT_TIMEOUT", "0");
  EXPECT_THROW(config::heartbeat_timeout_s(), std::invalid_argument);
}

TEST(Config, BackendFollowsPrecedence) {
  ::unsetenv("SAFELIGHT_BACKEND");
  EXPECT_EQ(config::backend(), "auto");
  ScopedEnv env("SAFELIGHT_BACKEND", "scalar");
  EXPECT_EQ(config::backend(), "scalar");  // env beats default
  config::Overrides cli;
  cli.backend = "avx2";
  config::ScopedOverrides guard(cli);
  EXPECT_EQ(config::backend(), "avx2");  // CLI beats env
}

// ---------------------------------------------------------------- fault

TEST(Fault, DisarmedPtpIsANoop) {
  fault::reset();
  EXPECT_FALSE(fault::armed());
  fault::ptp("never.recorded");  // must neither crash nor count
  EXPECT_TRUE(fault::counters().empty());
}

TEST(Fault, CountingModeCountsEveryPointRegardlessOfFilter) {
  // independent with probability 0 arms pure counting: nothing fires, and
  // the counters enumerate every live point even though the match filter
  // names only one of them.
  fault::FaultConfig config;
  config.mode = fault::Mode::kIndependent;
  config.independent_prob = 0.0;
  config.point = "only.this";
  fault::ScopedFault scoped(config);
  ASSERT_TRUE(fault::armed());

  fault::ptp("only.this");
  fault::ptp("other.point");
  fault::ptp("other.point");

  const auto counters = fault::counters();
  ASSERT_EQ(counters.size(), 2u);  // sorted by name
  EXPECT_EQ(counters[0].point, "only.this");
  EXPECT_EQ(counters[0].hits, 1u);
  EXPECT_EQ(counters[1].point, "other.point");
  EXPECT_EQ(counters[1].hits, 2u);

  const std::string report = fault::report();
  EXPECT_NE(report.find("mode=independent"), std::string::npos);
  EXPECT_NE(report.find("point=only.this"), std::string::npos);
  EXPECT_NE(report.find("matched_hits=1"), std::string::npos);  // filtered
  EXPECT_NE(report.find("[fault]   only.this hits=1"), std::string::npos);
  EXPECT_NE(report.find("[fault]   other.point hits=2"), std::string::npos);
}

TEST(Fault, ScopedFaultDisarmsAndClearsOnExit) {
  {
    fault::FaultConfig config;
    config.mode = fault::Mode::kIndependent;
    fault::ScopedFault scoped(config);
    fault::ptp("scoped.point");
    EXPECT_EQ(fault::counters().size(), 1u);
  }
  EXPECT_FALSE(fault::armed());
  EXPECT_TRUE(fault::counters().empty());
}

TEST(Fault, InitRejectsOutOfRangeConfigs) {
  fault::FaultConfig bad_prob;
  bad_prob.mode = fault::Mode::kIndependent;
  bad_prob.independent_prob = 1.5;
  EXPECT_THROW(fault::init(bad_prob), std::invalid_argument);
  bad_prob.independent_prob = -0.1;
  EXPECT_THROW(fault::init(bad_prob), std::invalid_argument);

  fault::FaultConfig bad_run;
  bad_run.mode = fault::Mode::kRunLength;
  bad_run.run_length = 0;
  EXPECT_THROW(fault::init(bad_run), std::invalid_argument);
  bad_run.mode = fault::Mode::kUniformOverRun;
  EXPECT_THROW(fault::init(bad_run), std::invalid_argument);
  EXPECT_FALSE(fault::armed());  // a rejected init never arms
}

TEST(Fault, ParseModeNamesRoundTripAndRejectTypos) {
  EXPECT_EQ(fault::parse_mode("none"), fault::Mode::kNone);
  EXPECT_EQ(fault::parse_mode("independent"), fault::Mode::kIndependent);
  EXPECT_EQ(fault::parse_mode("run_length"), fault::Mode::kRunLength);
  EXPECT_EQ(fault::parse_mode("uniform"), fault::Mode::kUniformOverRun);
  for (const fault::Mode mode :
       {fault::Mode::kNone, fault::Mode::kIndependent, fault::Mode::kRunLength,
        fault::Mode::kUniformOverRun}) {
    EXPECT_EQ(fault::parse_mode(fault::to_string(mode)), mode);
  }
  try {
    fault::parse_mode("sometimes");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("run_length"), std::string::npos);
  }
}

TEST(FaultDeathTest, RunLengthPullsThePlugOnExactlyTheNthMatchedHit) {
  // The plug is an abrupt std::_Exit(42): assert via a death test that the
  // first matched hit survives and the second one kills the process.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        fault::FaultConfig config;
        config.mode = fault::Mode::kRunLength;
        config.point = "unit.point";
        config.run_length = 2;
        fault::init(config);
        fault::ptp("ignored.point");  // filtered out: never matches
        fault::ptp("unit.point");     // matched hit 1: survives
        fault::ptp("unit.point");     // matched hit 2: plug pulled
        std::_Exit(0);                // not reached
      },
      ::testing::ExitedWithCode(fault::kPlugPulledExitCode),
      "pulling the plug at 'unit.point'");
}

// ---------------------------------------------------------------- json

TEST(Json, RendersNestedDocumentDeterministically) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("safelight");
  json.key("count").value(2);
  json.key("accuracy").value(0.51234567, 4);
  json.key("flag").value(true);
  json.key("missing").null_value();
  json.key("rows").begin_array();
  json.begin_object();
  json.key("id").value(std::uint64_t{7});
  json.end_object();
  json.end_array();
  json.key("empty").begin_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(std::move(json).str(),
            "{\n"
            "  \"name\": \"safelight\",\n"
            "  \"count\": 2,\n"
            "  \"accuracy\": 0.5123,\n"
            "  \"flag\": true,\n"
            "  \"missing\": null,\n"
            "  \"rows\": [\n"
            "    {\n"
            "      \"id\": 7\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": []\n"
            "}\n");
}

TEST(Json, EscapesSpecialCharacters) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value(std::string("a\"b\\c\nd\te") + '\x01');
  json.end_object();
  EXPECT_NE(std::move(json).str().find("a\\\"b\\\\c\\nd\\te\\u0001"),
            std::string::npos);
}

TEST(Json, CompactModeEmitsSingleLineDocuments) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("type").value("task");
  json.key("id").value(std::uint64_t{3});
  json.key("scenarios").begin_array();
  json.value("hotspot/CONV+FC/f0.05/s1003");
  json.end_array();
  json.end_object();
  // One line + trailing '\n': exactly the NDJSON framing the distributed
  // protocol writes onto its pipes.
  EXPECT_EQ(std::move(json).str(),
            "{\"type\":\"task\",\"id\":3,"
            "\"scenarios\":[\"hotspot/CONV+FC/f0.05/s1003\"]}\n");
}

TEST(Json, ParserRoundTripsWriterOutput) {
  JsonWriter json(/*compact=*/true);
  json.begin_object();
  json.key("name").value("a\"b\\c\nd");
  json.key("count").value(std::int64_t{-2});
  json.key("ratio").value(0.25, 6);
  json.key("on").value(true);
  json.key("off").value(false);
  json.key("gap").null_value();
  json.key("list").begin_array().value(std::uint64_t{1}).value(
      std::uint64_t{2});
  json.end_array();
  json.end_object();
  const JsonValue doc = JsonValue::parse(std::move(json).str());
  EXPECT_EQ(doc.at("name").as_string(), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(doc.at("count").as_number(), -2.0);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.25);
  EXPECT_TRUE(doc.at("on").as_bool());
  EXPECT_FALSE(doc.at("off").as_bool());
  EXPECT_EQ(doc.at("gap").type(), JsonValue::Type::kNull);
  ASSERT_EQ(doc.at("list").as_array().size(), 2u);
  EXPECT_EQ(doc.at("list").as_array()[1].as_uint(), 2u);
  EXPECT_TRUE(doc.has("name"));
  EXPECT_FALSE(doc.has("absent"));
}

TEST(Json, ParserRejectsMalformedDocumentsWithByteOffset) {
  const char* bad[] = {
      "",                       // empty
      "{",                      // truncated object
      "{\"a\":1,}",             // trailing comma
      "{\"a\":1}{",             // trailing garbage
      "{\"a\":1,\"a\":2}",      // duplicate key
      "[1 2]",                  // missing comma
      "\"unterminated",         // unterminated string
      "{\"a\":truf}",           // bad literal
      "nul",                    // bad literal
      "{\"a\":\"\\x\"}",        // bad escape
      "\"\\u12g4\"",            // bad \u digit
      "{\"k\":01e}",            // trailing junk after number
      "{1:2}",                  // non-string key
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), std::invalid_argument) << text;
  }
  try {
    JsonValue::parse("{\"a\":1,}");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(Json, ParserAccessorsRejectTypeMismatches) {
  const JsonValue doc = JsonValue::parse("{\"n\":1.5,\"neg\":-1}");
  EXPECT_THROW(doc.at("n").as_string(), std::invalid_argument);
  EXPECT_THROW(doc.at("n").as_bool(), std::invalid_argument);
  EXPECT_THROW(doc.at("n").as_array(), std::invalid_argument);
  EXPECT_THROW(doc.at("n").as_uint(), std::invalid_argument);   // 1.5
  EXPECT_THROW(doc.at("neg").as_uint(), std::invalid_argument); // negative
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
  EXPECT_THROW(doc.at("n").at("x"), std::invalid_argument);  // not an object
}

TEST(Json, ParserDecodesUnicodeEscapes) {
  const JsonValue doc = JsonValue::parse("\"\\u0041\\u00e9\\u20ac\"");
  EXPECT_EQ(doc.as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A, é, €
}

TEST(Json, StructuralMisuseThrows) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("k"), std::logic_error);  // key outside object
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), std::logic_error);  // mismatched end
    EXPECT_THROW(std::move(json).str(), std::logic_error);  // still open
  }
}

}  // namespace
}  // namespace safelight
