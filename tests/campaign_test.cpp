// Tests for the campaign subsystem: composite scenario identity and
// validation (order invariance, disjoint placement, zero-fraction
// rejection), schedule bookkeeping, evasion-rate/latency math on hand-built
// outcomes, executor hook stacking, and the end-to-end campaign sweep —
// cached, resumable, and demonstrably able to evade detectors that flag
// the static grid.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "accel/executor.hpp"
#include "attacks/campaign.hpp"
#include "common/rng.hpp"
#include "core/campaign_eval.hpp"
#include "core/evaluation.hpp"
#include "core/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

using attack::AttackScenario;
using attack::AttackTarget;
using attack::AttackVector;
using attack::CampaignSchedule;
using attack::CompositeScenario;
using attack::PlacementPolicy;

core::ExperimentSetup tiny_setup() {
  return core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
}

/// The cross-block disjoint composite used throughout: actuation in CONV
/// stacked with a hotspot in FC.
CompositeScenario cross_block_composite() {
  CompositeScenario composite;
  composite.placement = PlacementPolicy::kDisjointBlocks;
  composite.components.push_back(
      {AttackVector::kActuation, AttackTarget::kConvBlock, 0.10, 42});
  composite.components.push_back(
      {AttackVector::kHotspot, AttackTarget::kFcBlock, 0.10, 43});
  return composite;
}

// ------------------------------------------------------------ composite id

TEST(CompositeScenario, IdIsStableAndOrderInvariant) {
  const CompositeScenario composite = cross_block_composite();
  EXPECT_EQ(composite.id(),
            "composite[actuation/CONV/f0.1/s42+hotspot/FC/f0.1/s43]/dj");

  CompositeScenario reordered = composite;
  std::swap(reordered.components[0], reordered.components[1]);
  EXPECT_EQ(reordered.id(), composite.id());

  // Canonical component order is shared too (the application order).
  const auto canonical = composite.canonical_components();
  const auto canonical_reordered = reordered.canonical_components();
  ASSERT_EQ(canonical.size(), canonical_reordered.size());
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_EQ(canonical[i].id(), canonical_reordered[i].id());
  }
}

TEST(CompositeScenario, IdSeparatesDistinctComposites) {
  const CompositeScenario base = cross_block_composite();

  CompositeScenario other_fraction = base;
  other_fraction.components[0].fraction = 0.05;
  EXPECT_NE(other_fraction.id(), base.id());

  CompositeScenario other_seed = base;
  other_seed.components[1].seed = 99;
  EXPECT_NE(other_seed.id(), base.id());

  CompositeScenario other_placement = base;
  other_placement.placement = PlacementPolicy::kOverlapping;
  EXPECT_NE(other_placement.id(), base.id());

  CompositeScenario fewer = base;
  fewer.components.pop_back();
  EXPECT_NE(fewer.id(), base.id());
}

// ---------------------------------------------------------- validation

TEST(CompositeScenario, ValidatesComponentsAndRejectsZeroFraction) {
  CompositeScenario empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  CompositeScenario composite = cross_block_composite();
  EXPECT_NO_THROW(composite.validate());

  // A zero-fraction component is a validation error in composites (it
  // contributes nothing but splits the cache key space).
  composite.components[1].fraction = 0.0;
  EXPECT_THROW(composite.validate(), std::invalid_argument);

  composite.components[1].fraction = 1.5;  // component validation runs too
  EXPECT_THROW(composite.validate(), std::invalid_argument);
}

TEST(CompositeScenario, DisjointPlacementHonoured) {
  // CONV + FC: disjoint, fine.
  EXPECT_NO_THROW(cross_block_composite().validate());

  // Two components on the same block collide.
  CompositeScenario same_block;
  same_block.placement = PlacementPolicy::kDisjointBlocks;
  same_block.components.push_back(
      {AttackVector::kActuation, AttackTarget::kConvBlock, 0.05, 1});
  same_block.components.push_back(
      {AttackVector::kHotspot, AttackTarget::kConvBlock, 0.05, 2});
  EXPECT_THROW(same_block.validate(), std::invalid_argument);

  // kBothBlocks claims both blocks: nothing may stack on top of it.
  CompositeScenario both_then_fc;
  both_then_fc.placement = PlacementPolicy::kDisjointBlocks;
  both_then_fc.components.push_back(
      {AttackVector::kActuation, AttackTarget::kBothBlocks, 0.05, 1});
  both_then_fc.components.push_back(
      {AttackVector::kHotspot, AttackTarget::kFcBlock, 0.05, 2});
  EXPECT_THROW(both_then_fc.validate(), std::invalid_argument);

  // The same collisions are allowed under the overlapping policy.
  same_block.placement = PlacementPolicy::kOverlapping;
  both_then_fc.placement = PlacementPolicy::kOverlapping;
  EXPECT_NO_THROW(same_block.validate());
  EXPECT_NO_THROW(both_then_fc.validate());
}

TEST(ScenarioGrid, RejectsZeroFractionCells) {
  EXPECT_THROW(attack::scenario_grid({AttackVector::kActuation},
                                     {AttackTarget::kBothBlocks}, {0.0}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      attack::scenario_grid({AttackVector::kHotspot},
                            {AttackTarget::kConvBlock}, {0.05, 0.0}, 2),
      std::invalid_argument);
}

// ------------------------------------------------------------- schedules

TEST(CampaignSchedule, BookkeepingAndFactories) {
  const CampaignSchedule ramp = attack::ramp_campaign(
      "ramp", cross_block_composite(), {0.1, 0.5, 1.0}, /*checks_per_phase=*/2);
  EXPECT_EQ(ramp.phases.size(), 3u);
  EXPECT_EQ(ramp.total_checks(), 6u);
  EXPECT_EQ(ramp.active_phase_count(), 3u);
  EXPECT_EQ(ramp.first_active_phase(), 0u);
  // Scaling multiplied every component fraction.
  EXPECT_DOUBLE_EQ(ramp.phases[0].attack.components[0].fraction, 0.01);
  EXPECT_DOUBLE_EQ(ramp.phases[1].attack.components[1].fraction, 0.05);
  EXPECT_DOUBLE_EQ(ramp.phases[2].attack.components[0].fraction, 0.10);

  const CampaignSchedule burst = attack::burst_campaign(
      "burst", cross_block_composite(), /*lead_dormant=*/2,
      /*trail_dormant=*/1, /*burst_checks=*/3);
  EXPECT_EQ(burst.phases.size(), 4u);
  EXPECT_EQ(burst.total_checks(), 6u);
  EXPECT_EQ(burst.active_phase_count(), 1u);
  EXPECT_EQ(burst.first_active_phase(), 2u);
  EXPECT_FALSE(burst.phases[0].active());
  EXPECT_TRUE(burst.phases[2].active());

  // Ids are stable, prefix-readable, and separate differing schedules.
  EXPECT_EQ(ramp.id().rfind("campaign/ramp/", 0), 0u);
  CampaignSchedule tweaked = ramp;
  tweaked.phases[1].checks = 7;
  EXPECT_NE(tweaked.id(), ramp.id());
  CampaignSchedule reordered = ramp;
  std::swap(reordered.phases[0].attack.components[0],
            reordered.phases[0].attack.components[1]);
  EXPECT_EQ(reordered.id(), ramp.id());  // canonical component order
}

TEST(CampaignSchedule, ValidationRejectsMalformedSchedules) {
  CampaignSchedule schedule;
  EXPECT_THROW(schedule.validate(), std::invalid_argument);  // no name
  schedule.name = "s";
  EXPECT_THROW(schedule.validate(), std::invalid_argument);  // no phases
  schedule.phases.push_back({"", {}, 1});
  EXPECT_THROW(schedule.validate(), std::invalid_argument);  // unnamed phase
  schedule.phases[0].name = "p";
  schedule.phases[0].checks = 0;
  EXPECT_THROW(schedule.validate(), std::invalid_argument);  // zero checks
  schedule.phases[0].checks = 1;
  EXPECT_NO_THROW(schedule.validate());  // dormant-only schedule is valid
  schedule.phases[0].attack.components.push_back(
      {AttackVector::kActuation, AttackTarget::kConvBlock, 0.0, 1});
  EXPECT_THROW(schedule.validate(), std::invalid_argument);  // zero fraction
}

// ----------------------------------------------------- hook stack plumbing

TEST(ExecutorHooks, StackPushPopAndMutatingQuery) {
  accel::OnnExecutor executor(accel::AcceleratorConfig::crosslight());
  EXPECT_FALSE(executor.has_readout_hook());

  auto noop = [](nn::Tensor&, accel::BlockKind, float) {};
  executor.push_readout_hook(noop, accel::ReadoutHookKind::kObserving);
  EXPECT_TRUE(executor.has_readout_hook());
  EXPECT_FALSE(executor.has_mutating_readout_hook());

  executor.push_readout_hook(noop, accel::ReadoutHookKind::kMutating);
  EXPECT_EQ(executor.readout_hook_count(), 2u);
  EXPECT_TRUE(executor.has_mutating_readout_hook());

  executor.pop_readout_hook();  // LIFO: the mutating one goes first
  EXPECT_FALSE(executor.has_mutating_readout_hook());
  EXPECT_EQ(executor.readout_hook_count(), 1u);

  // set_readout_hook replaces the whole stack (compatibility contract).
  executor.set_readout_hook(noop);
  EXPECT_EQ(executor.readout_hook_count(), 1u);
  EXPECT_TRUE(executor.has_mutating_readout_hook());
  executor.set_readout_hook(nullptr);
  EXPECT_FALSE(executor.has_readout_hook());
  EXPECT_THROW(executor.pop_readout_hook(), std::invalid_argument);
}

TEST(ExecutorHooks, StackedHooksRunInPushOrder) {
  Rng rng(11);
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4, 2, rng);
  accel::OnnExecutor executor(accel::AcceleratorConfig::crosslight());
  executor.condition_weights(model);
  nn::Tensor x({1, 4}, {0.1f, -0.2f, 0.3f, -0.4f});

  std::vector<int> order;
  executor.push_readout_hook(
      [&order](nn::Tensor&, accel::BlockKind, float) { order.push_back(1); },
      accel::ReadoutHookKind::kObserving);
  executor.push_readout_hook(
      [&order](nn::Tensor&, accel::BlockKind, float) { order.push_back(2); },
      accel::ReadoutHookKind::kObserving);
  (void)executor.forward(model, x);
  ASSERT_EQ(order.size(), 2u);  // one mapped layer, two hooks
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

// -------------------------------------------- evasion/latency arithmetic

/// Hand-built two-detector campaign outcome:
///   phase 0 "dormant"  (1 check, inactive)
///   phase 1 "stealth"  (2 checks, active)  — d1 never flags, d2 flags k1
///   phase 2 "burst"    (1 check, active)   — d1 flags, d2 flags
core::CampaignResult hand_built_result() {
  core::CampaignResult result;
  result.campaign = "hand";
  result.baseline_accuracy = 0.9;
  result.detectors = {"d1", "d2"};
  result.phases = {{"dormant", false, 1, 0.9},
                   {"stealth", true, 2, 0.85},
                   {"burst", true, 1, 0.5}};
  auto cell = [](std::size_t phase, std::size_t check,
                 const std::string& detector, bool flagged) {
    core::CampaignCell c;
    c.phase = phase;
    c.check = check;
    c.detector = detector;
    c.score = flagged ? 1.0 : 0.0;
    c.flagged = flagged;
    return c;
  };
  result.cells = {cell(0, 0, "d1", false), cell(0, 0, "d2", false),
                  cell(1, 0, "d1", false), cell(1, 0, "d2", false),
                  cell(1, 1, "d1", false), cell(1, 1, "d2", true),
                  cell(2, 0, "d1", true),  cell(2, 0, "d2", true)};
  return result;
}

TEST(CampaignResult, EvasionRateAndLatencyMath) {
  const core::CampaignResult result = hand_built_result();

  EXPECT_DOUBLE_EQ(result.accuracy_drop(0), 0.0);
  EXPECT_NEAR(result.accuracy_drop(1), 0.05, 1e-12);
  EXPECT_NEAR(result.accuracy_drop(2), 0.4, 1e-12);

  EXPECT_FALSE(result.phase_flagged(1, "d1"));
  EXPECT_TRUE(result.phase_flagged(1, "d2"));
  EXPECT_TRUE(result.phase_flagged(2, "d1"));

  // d1 evaded the stealth phase (1 of 2 active); d2 evaded nothing.
  EXPECT_DOUBLE_EQ(result.evasion_rate("d1"), 0.5);
  EXPECT_DOUBLE_EQ(result.evasion_rate("d2"), 0.0);

  // Checks count from the first active phase: stealth k0, k1, burst k0.
  EXPECT_EQ(result.detection_latency_checks("d2"), 2u);
  EXPECT_EQ(result.detection_latency_checks("d1"), 3u);
  EXPECT_EQ(result.detection_latency_checks("unknown"), 0u);  // never flagged

  // No active phase -> evasion rate is undefined.
  core::CampaignResult dormant_only;
  dormant_only.phases = {{"dormant", false, 1, 0.9}};
  EXPECT_THROW(dormant_only.evasion_rate("d1"), std::invalid_argument);
}

TEST(CampaignResult, DormantFlagIsFalsePositiveNotDetection) {
  core::CampaignResult result = hand_built_result();
  // A flag during the dormant phase must affect neither metric: there is no
  // attack to detect.
  for (core::CampaignCell& c : result.cells) {
    if (c.phase == 0) c.flagged = true;
  }
  EXPECT_DOUBLE_EQ(result.evasion_rate("d1"), 0.5);
  EXPECT_EQ(result.detection_latency_checks("d1"), 3u);
}

// -------------------------------------------------- composite evaluation

TEST(CompositeEvaluation, OrderInvariantAndAtLeastWorstComponent) {
  TempDir dir("composite_eval");
  const core::ExperimentSetup setup = tiny_setup();
  core::ModelZoo zoo(dir.path());
  auto model = zoo.get_or_train(setup, core::variant_by_name("Original"));
  core::AttackEvaluator evaluator(setup, *model, "Original", "");

  const CompositeScenario composite = cross_block_composite();
  CompositeScenario reordered = composite;
  std::swap(reordered.components[0], reordered.components[1]);

  // One-pass application is order-invariant down to the weight bytes
  // (canonical component order), not just in the cached accuracy.
  evaluator.apply_composite(composite);
  const std::string checksum_a = core::weights_checksum(*model);
  EXPECT_LT(evaluator.first_dirty_layer(), model->size());
  evaluator.apply_composite(reordered);
  const std::string checksum_b = core::weights_checksum(*model);
  evaluator.restore_clean();
  EXPECT_EQ(checksum_a, checksum_b);

  // The composite costs at least (within noise of the tiny eval subset)
  // what its worst component costs alone: stacking an attack never heals
  // the deployment.
  const double baseline = evaluator.baseline_accuracy();
  double worst_component_drop = 0.0;
  for (const AttackScenario& component : composite.components) {
    worst_component_drop = std::max(
        worst_component_drop, baseline - evaluator.evaluate_scenario(component));
  }
  const double composite_drop =
      baseline - evaluator.evaluate_composite(composite);
  EXPECT_GE(composite_drop + 0.02, worst_component_drop);
  EXPECT_GT(composite_drop, 0.05);  // and it genuinely hurts
}

// ------------------------------------------------------- campaign sweep

TEST(CampaignSweep, CachedResumableAndEvadesAStaticGridDetector) {
  TempDir dir("campaign_sweep");
  const core::ExperimentSetup setup = tiny_setup();
  core::ModelZoo zoo(dir.path());

  // The evasive schedule: the hotspot heaters start at 1 % of the nominal
  // victim population — banks warm up (the thermal sentinel can see it) but
  // the post-compensation shift corrupts no weight yet, so read-out
  // detectors have nothing to read — then escalate to the static grid's
  // full 10 % intensity.
  CompositeScenario hotspot_all;
  hotspot_all.components.push_back(
      {AttackVector::kHotspot, AttackTarget::kBothBlocks, 0.10, 42});
  const CampaignSchedule creep =
      attack::ramp_campaign("creep", hotspot_all, {0.01, 1.0});

  // A second campaign shares its burst composite with creep's peak phase
  // via the composite-id accuracy cache.
  const CampaignSchedule burst =
      attack::burst_campaign("ambush", hotspot_all, /*lead_dormant=*/1,
                             /*trail_dormant=*/0);

  core::CampaignOptions options;
  options.cache_dir = dir.path();
  const core::CampaignSweepReport first = core::run_campaign_sweep(
      setup, zoo, core::variant_by_name("Original"), {creep, burst}, options);
  ASSERT_EQ(first.campaigns.size(), 2u);
  EXPECT_EQ(first.evaluated, 4u);  // 2 + 2 phases
  EXPECT_EQ(first.cache_hits, 0u);

  const core::CampaignResult& evasive = first.campaigns[0];
  ASSERT_EQ(evasive.phases.size(), 2u);
  EXPECT_TRUE(evasive.phases[0].active);

  // The acceptance demonstration: the range monitor flags the full-strength
  // burst — the same (vector, intensity) cell it reliably flags in the
  // static fig_detection grid — but misses the active low-intensity creep
  // phase entirely. The static grid's ROC numbers overstate it against an
  // adaptive attacker.
  EXPECT_TRUE(evasive.phase_flagged(1, "range_monitor"));
  EXPECT_FALSE(evasive.phase_flagged(0, "range_monitor"));
  EXPECT_GT(evasive.evasion_rate("range_monitor"), 0.0);
  EXPECT_TRUE(evasive.phase_flagged(1, "canary"));
  EXPECT_FALSE(evasive.phase_flagged(0, "canary"));

  // The thermal sentinel sees the heaters before any weight corrupts: this
  // is exactly why the subsystem fields a *suite*.
  EXPECT_TRUE(evasive.phase_flagged(0, "thermal_sentinel"));
  EXPECT_EQ(evasive.detection_latency_checks("thermal_sentinel"), 1u);
  EXPECT_EQ(evasive.detection_latency_checks("range_monitor"), 2u);

  // The burst attack costs accuracy; the creep phase does not (yet).
  EXPECT_GT(evasive.accuracy_drop(1), 0.05);
  EXPECT_NEAR(evasive.accuracy_drop(0), 0.0, 0.02);

  // Resume: a fresh sweep (new process in real life) re-evaluates nothing
  // and reproduces every number exactly.
  const core::CampaignSweepReport second = core::run_campaign_sweep(
      setup, zoo, core::variant_by_name("Original"), {creep, burst}, options);
  EXPECT_EQ(second.evaluated, 0u);
  EXPECT_EQ(second.cache_hits, 4u);
  for (std::size_t ci = 0; ci < first.campaigns.size(); ++ci) {
    const auto& a = first.campaigns[ci];
    const auto& b = second.campaigns[ci];
    ASSERT_EQ(a.cells.size(), b.cells.size());
    EXPECT_DOUBLE_EQ(a.baseline_accuracy, b.baseline_accuracy);
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.cells[i].score, b.cells[i].score);
      EXPECT_EQ(a.cells[i].flagged, b.cells[i].flagged);
      EXPECT_TRUE(b.cells[i].from_cache);
    }
    for (std::size_t pi = 0; pi < a.phases.size(); ++pi) {
      EXPECT_DOUBLE_EQ(a.phases[pi].accuracy, b.phases[pi].accuracy);
    }
  }

  // The two campaigns' full-strength phases share one accuracy entry (the
  // composite id is the key, not the campaign).
  EXPECT_DOUBLE_EQ(first.campaigns[0].phases[1].accuracy,
                   first.campaigns[1].phases[1].accuracy);

  // Duplicate campaign ids are rejected (they would collide in the store).
  EXPECT_THROW(core::run_campaign_sweep(setup, zoo,
                                        core::variant_by_name("Original"),
                                        {creep, creep}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace safelight
