// Deeper cross-cutting checks: crosstalk scaling, linearity, composition of
// process variation with attacks, executor quantization sweeps, energy
// model block concurrency, and assorted edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/energy.hpp"
#include "accel/executor.hpp"
#include "attacks/corruption.hpp"
#include "common/stats.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pool.hpp"
#include "photonics/laser.hpp"
#include "photonics/mr_bank.hpp"
#include "photonics/variation.hpp"
#include "thermal/heatmap.hpp"
#include "thermal/solver.hpp"

namespace safelight {
namespace {

// ------------------------------------------------------- bank crosstalk

double bank_crosstalk_error(double q_factor, std::size_t channels) {
  phot::MrGeometry geometry;
  geometry.q_factor = q_factor;
  const phot::Microring reference(geometry, 1550.0);
  const phot::WdmGrid grid(channels, 1550.0, reference.fsr_nm());
  phot::MrBank bank(geometry, grid);
  Rng rng(3);
  std::vector<double> weights(channels);
  for (auto& w : weights) w = rng.uniform(-0.9, 0.9);
  bank.set_weights(weights);
  const auto effective = bank.effective_weights();
  double err = 0.0;
  for (std::size_t c = 0; c < channels; ++c) {
    err = std::max(err, std::abs(effective[c] - weights[c]));
  }
  return err;
}

TEST(BankPhysics, HigherQReducesCrosstalk) {
  // Same 20-channel grid, sharper rings -> less inter-channel interference.
  const double coarse = bank_crosstalk_error(10'000.0, 20);
  const double fine = bank_crosstalk_error(40'000.0, 20);
  EXPECT_LT(fine, coarse);
}

TEST(BankPhysics, DenserGridNeedsHigherQ) {
  // 150 channels at CONV-grade Q would be unusable; at FC-grade Q the
  // error returns to the CONV block's level.
  const double wrong_q = bank_crosstalk_error(20'000.0, 150);
  const double right_q = bank_crosstalk_error(150'000.0, 150);
  EXPECT_GT(wrong_q, 5.0 * right_q);
  EXPECT_LT(right_q, 0.05);
}

TEST(BankPhysics, DotProductLinearInActivations) {
  phot::MrGeometry geometry;
  const phot::Microring reference(geometry, 1550.0);
  const phot::WdmGrid grid(8, 1550.0, reference.fsr_nm());
  phot::MrBank bank(geometry, grid);
  bank.set_weights({0.5, -0.3, 0.8, 0.1, -0.6, 0.2, 0.9, -0.4});
  const std::vector<double> a = {1, 0, 0.5, 0.25, 0, 1, 0.75, 0.1};
  std::vector<double> a2(a);
  for (auto& v : a2) v *= 2.0;
  EXPECT_NEAR(bank.dot_product(a2), 2.0 * bank.dot_product(a), 1e-9);
}

TEST(BankPhysics, PvComposesWithThermalAttack) {
  // Residual PV offsets plus a hotspot shift: results stay deterministic
  // and finite, and the attack still dominates the corruption.
  phot::MrGeometry geometry;
  const phot::Microring reference(geometry, 1550.0);
  const phot::WdmGrid grid(8, 1550.0, reference.fsr_nm());
  phot::MrBank bank(geometry, grid);
  std::vector<double> weights(8, 0.5);
  bank.set_weights(weights);
  Rng rng(21);
  phot::ProcessVariation pv;
  pv.sigma_nm = 1.2;
  pv.trim_range_nm = 1.0;
  phot::apply_process_variation(bank, pv, rng);
  for (std::size_t i = 0; i < 8; ++i) bank.set_temperature_delta(i, 20.0);
  const auto a = bank.effective_weights();
  phot::MrBank bank2(geometry, grid);
  bank2.set_weights(weights);
  Rng rng2(21);
  phot::apply_process_variation(bank2, pv, rng2);
  for (std::size_t i = 0; i < 8; ++i) bank2.set_temperature_delta(i, 20.0);
  const auto b = bank2.effective_weights();
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_TRUE(std::isfinite(a[c]));
    EXPECT_NEAR(a[c], b[c], 1e-12);  // deterministic
  }
}

// ------------------------------------------------------- executor sweep

class AdcBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcBitsSweep, QuantizationErrorShrinksWithBits) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 36, 5, rng);
  nn::Tensor x({2, 1, 6, 6});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  const nn::Tensor exact = model.forward(x, false);

  config.adc_bits = GetParam();
  accel::ExecutorOptions options;
  options.quantize_weights = false;
  options.quantize_activations = true;
  accel::OnnExecutor executor(config, options);
  const float err = nn::max_abs_diff(exact, executor.forward(model, x));

  config.adc_bits = GetParam() + 2;
  accel::OnnExecutor finer(config, options);
  const float err_finer = nn::max_abs_diff(exact, finer.forward(model, x));
  EXPECT_LE(err_finer, err + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsSweep, ::testing::Values(3u, 5u, 7u));

TEST(Executor, WeightQuantizationCanBeDisabled) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Linear>(4, 3, rng);
  const auto before = model.params()[0]->value;
  accel::ExecutorOptions options;
  options.quantize_weights = false;
  accel::OnnExecutor executor(accel::AcceleratorConfig::crosslight(),
                              options);
  executor.condition_weights(model);
  EXPECT_FLOAT_EQ(nn::max_abs_diff(before, model.params()[0]->value), 0.0f);
}

// ------------------------------------------------------- energy model

TEST(EnergyDepth, LatencyIsMaxOfConcurrentBlocks) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  accel::MacCounts conv_only;
  conv_only.conv_macs = 100'000'000;
  accel::MacCounts fc_only;
  fc_only.fc_macs = 100'000'000;
  accel::MacCounts both;
  both.conv_macs = 100'000'000;
  both.fc_macs = 100'000'000;
  const double conv_lat =
      accel::estimate_inference(conv_only, config).latency_us;
  const double fc_lat = accel::estimate_inference(fc_only, config).latency_us;
  const double both_lat = accel::estimate_inference(both, config).latency_us;
  EXPECT_NEAR(both_lat, std::max(conv_lat, fc_lat), 1e-9);
  // The CONV block has ~34x fewer slots, so equal MACs take longer there.
  EXPECT_GT(conv_lat, fc_lat);
}

TEST(EnergyDepth, EnergyScalesWithLatency) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  accel::MacCounts small;
  small.conv_macs = 10'000'000;
  accel::MacCounts large;
  large.conv_macs = 100'000'000;
  const auto report_small = accel::estimate_inference(small, config);
  const auto report_large = accel::estimate_inference(large, config);
  EXPECT_GT(report_large.laser_uj, report_small.laser_uj * 5.0);
  EXPECT_GT(report_large.total_uj(), report_small.total_uj());
}

// ------------------------------------------------------- thermal extras

TEST(ThermalDepth, TwoUnequalSourcesKeepOrdering) {
  thermal::GridConfig config;
  config.rows = 21;
  config.cols = 31;  // non-square
  thermal::ThermalGrid grid(config);
  grid.add_power_mw(10, 8, 60.0);
  grid.add_power_mw(10, 24, 20.0);
  ASSERT_TRUE(thermal::solve_steady_state(grid).converged);
  EXPECT_GT(grid.delta_t(10, 8), grid.delta_t(10, 24));
  EXPECT_GT(grid.delta_t(10, 24), 0.0);
}

TEST(ThermalDepth, FlatFieldHeatmapDoesNotDivideByZero) {
  thermal::GridConfig config;
  config.rows = 3;
  config.cols = 3;
  thermal::ThermalGrid grid(config);  // all ambient
  const std::string art = thermal::render_ascii_heatmap(grid);
  EXPECT_NE(art.find("scale:"), std::string::npos);
}

TEST(ThermalDepth, SolverHandlesSingleCellGrid) {
  thermal::GridConfig config;
  config.rows = 1;
  config.cols = 1;
  thermal::ThermalGrid grid(config);
  grid.add_power_mw(0, 0, 10.0);
  const auto result = thermal::solve_steady_state(grid);
  EXPECT_TRUE(result.converged);
  // No lateral neighbors: delta-T = P / g_sink = 0.01 W / 1.6e-4 W/K.
  EXPECT_NEAR(grid.delta_t(0, 0), 0.01 / 1.6e-4, 1.0);
}

// ------------------------------------------------------- corruption extras

TEST(CorruptionDepth, ConvTargetSparesLinearWeights) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 2, 3, 1, 1, rng);
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(2 * 16, 4, rng);
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{1, 2, 4};
  config.fc = accel::BlockDims{1, 2, 10};
  accel::WeightStationaryMapping mapping(model, config);

  nn::Param* linear_w = nullptr;
  for (nn::Param* p : model.params()) {
    if (p->kind == nn::ParamKind::kLinearWeight) linear_w = p;
  }
  ASSERT_NE(linear_w, nullptr);
  const nn::Tensor before = linear_w->value;

  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kConvBlock;
  scenario.fraction = 1.0;
  scenario.seed = 5;
  attack::apply_attack(mapping, scenario);
  EXPECT_FLOAT_EQ(nn::max_abs_diff(before, linear_w->value), 0.0f);
}

TEST(CorruptionDepth, BiasesAndBatchNormAlwaysUntouched) {
  const auto setup_model = []() {
    Rng rng(5);
    auto model = nn::make_resnet18(
        []() {
          nn::ModelConfig config;
          config.in_channels = 3;
          config.image_size = 12;
          config.width = 4;
          return config;
        }());
    return model;
  };
  auto model = setup_model();
  std::vector<nn::Tensor> electronic_before;
  for (nn::Param* p : model->params()) {
    if (p->kind == nn::ParamKind::kElectronic) {
      electronic_before.push_back(p->value);
    }
  }
  accel::AcceleratorConfig config = accel::AcceleratorConfig::scaled(50);
  accel::WeightStationaryMapping mapping(*model, config);
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kHotspot;
  scenario.target = attack::AttackTarget::kBothBlocks;
  scenario.fraction = 0.2;
  scenario.seed = 3;
  attack::apply_attack(mapping, scenario);
  std::size_t i = 0;
  for (nn::Param* p : model->params()) {
    if (p->kind == nn::ParamKind::kElectronic) {
      EXPECT_FLOAT_EQ(nn::max_abs_diff(electronic_before[i], p->value), 0.0f);
      ++i;
    }
  }
}

// ------------------------------------------------------- misc edges

TEST(MiscEdges, LaserDbConversions) {
  EXPECT_NEAR(phot::db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(phot::db_to_linear(10.0), 0.1, 1e-12);
  EXPECT_NEAR(phot::db_to_linear(3.0), 0.501, 1e-3);
}

TEST(MiscEdges, BoxStatsTwoElements) {
  const BoxStats s = box_stats({1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.q1, 1.5);
  EXPECT_DOUBLE_EQ(s.q3, 2.5);
}

TEST(MiscEdges, SequentialAccuracyRejectsMismatchedLabels) {
  Rng rng(3);
  nn::Sequential model;
  model.emplace<nn::Linear>(2, 2, rng);
  nn::Tensor x({2, 2});
  EXPECT_THROW(model.accuracy(x, {0}), std::invalid_argument);
}

TEST(MiscEdges, DatasetTakeZeroThrows) {
  nn::Dataset d;
  d.num_classes = 2;
  d.images = nn::Tensor({2, 1, 1, 1});
  d.labels = {0, 1};
  EXPECT_THROW(d.take(0), std::invalid_argument);
}

}  // namespace
}  // namespace safelight
