// Tests for nn::Tensor, GEMM kernels and im2col/col2im.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/tensor.hpp"

namespace safelight::nn {
namespace {

// ---------------------------------------------------------------- tensor

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeHelpers) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, RejectsZeroDimension) {
  EXPECT_THROW(Tensor({2, 0, 3}), std::invalid_argument);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3, 4});
  t.at({1, 2, 3}) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  EXPECT_EQ(t.at({1, 2, 3}), 7.0f);
}

TEST(Tensor, IndexingBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 0, 0}), std::invalid_argument);  // rank mismatch
  EXPECT_THROW(t.at_flat(6), std::out_of_range);
  EXPECT_THROW(t.dim(2), std::out_of_range);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.at({1, 0}), 4.0f);
  EXPECT_THROW(t.reshaped({7}), std::invalid_argument);
}

TEST(Tensor, Arithmetic) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 5.0f);
  c -= a;
  EXPECT_EQ(c[2], 6.0f);
  c *= 2.0f;
  EXPECT_EQ(c[0], 8.0f);
  c.add_scaled(a, -1.0f);
  EXPECT_EQ(c[0], 7.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0f), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from({-3, 1, 2});
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_DOUBLE_EQ(t.sum_squares(), 14.0);
}

TEST(Tensor, AllFiniteDetectsNan) {
  Tensor t = Tensor::from({1, 2});
  EXPECT_TRUE(t.all_finite());
  t[0] = std::nanf("");
  EXPECT_FALSE(t.all_finite());
  t[0] = INFINITY;
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({1, 2.5, 2});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
}

TEST(Tensor, FullFactory) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(t.sum(), 14.0f);
}

// ---------------------------------------------------------------- gemm

void naive_gemm(const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c, std::size_t m, std::size_t k,
                std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

struct GemmDims {
  std::size_t m, k, n;
};

class GemmTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(99);
  std::vector<float> a(m * k), b(k * n), c(m * n), expected(m * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  naive_gemm(a, b, expected, m, k, n);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4f) << "at " << i;
  }
}

TEST_P(GemmTest, TransposedVariantsMatch) {
  const auto [m, k, n] = GetParam();
  Rng rng(123);
  std::vector<float> a(m * k), b(k * n), expected(m * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  naive_gemm(a, b, expected, m, k, n);

  // gemm_bt: B^T stored as [n x k].
  std::vector<float> bt(n * k), c_bt(m * n);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  gemm_bt(a.data(), bt.data(), c_bt.data(), m, k, n);
  for (std::size_t i = 0; i < c_bt.size(); ++i) {
    EXPECT_NEAR(c_bt[i], expected[i], 1e-4f);
  }

  // gemm_at: A^T stored as [k x m].
  std::vector<float> at(k * m), c_at(m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  gemm_at(at.data(), b.data(), c_at.data(), m, k, n);
  for (std::size_t i = 0; i < c_at.size(); ++i) {
    EXPECT_NEAR(c_at[i], expected[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 2}, GemmDims{8, 8, 8},
                      GemmDims{17, 31, 13}, GemmDims{64, 70, 5},
                      GemmDims{33, 1, 9}, GemmDims{2, 128, 2}));

TEST(Gemm, AccumulateAddsToExisting) {
  const std::size_t m = 2, k = 3, n = 2;
  std::vector<float> a = {1, 0, 0, 0, 1, 0};
  std::vector<float> b = {1, 2, 3, 4, 5, 6};
  std::vector<float> c = {10, 10, 10, 10};
  gemm(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 11.0f);
  EXPECT_FLOAT_EQ(c[1], 12.0f);
  EXPECT_FLOAT_EQ(c[2], 13.0f);
  EXPECT_FLOAT_EQ(c[3], 14.0f);
}

TEST(Gemm, EmptyDimsAreNoops) {
  std::vector<float> c(4, 1.0f);
  gemm(nullptr, nullptr, c.data(), 0, 5, 4);
  EXPECT_FLOAT_EQ(c[0], 1.0f);  // untouched
}

// ---------------------------------------------------------------- im2col

TEST(Im2col, GeometryMath) {
  ConvGeom g{3, 8, 8, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_len(), 27u);
  EXPECT_TRUE(g.valid());

  ConvGeom strided{1, 7, 7, 3, 3, 2, 0};
  EXPECT_EQ(strided.out_h(), 3u);

  ConvGeom bad{1, 2, 2, 5, 5, 1, 0};
  EXPECT_FALSE(bad.valid());
}

TEST(Im2col, IdentityKernelExtractsPixels) {
  // 1x1 kernel: columns should be exactly the image pixels.
  ConvGeom g{2, 3, 3, 1, 1, 1, 0};
  std::vector<float> image(18);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<float>(i);
  }
  std::vector<float> cols(g.patch_len() * g.out_hw());
  im2col(image.data(), g, cols.data());
  for (std::size_t i = 0; i < image.size(); ++i) {
    EXPECT_FLOAT_EQ(cols[i], image[i]);
  }
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1};
  std::vector<float> image = {1, 2, 3, 4};
  std::vector<float> cols(g.patch_len() * g.out_hw());
  im2col(image.data(), g, cols.data());
  // Top-left output pixel, top-left kernel tap reads padding.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  // Center tap (kh=1, kw=1) of output (0,0) reads image(0,0)=1.
  const std::size_t center_row = 1 * 3 + 1;
  EXPECT_FLOAT_EQ(cols[center_row * g.out_hw() + 0], 1.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the adjoint pair used by conv backward.
  ConvGeom g{2, 5, 6, 3, 3, 2, 1};
  Rng rng(55);
  const std::size_t image_len = g.in_c * g.in_h * g.in_w;
  const std::size_t cols_len = g.patch_len() * g.out_hw();
  std::vector<float> x(image_len), y(cols_len);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1, 1));

  std::vector<float> ax(cols_len);
  im2col(x.data(), g, ax.data());
  std::vector<float> aty(image_len, 0.0f);
  col2im(y.data(), g, aty.data());

  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < cols_len; ++i) lhs += ax[i] * y[i];
  for (std::size_t i = 0; i < image_len; ++i) rhs += x[i] * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col, Col2imAccumulatesOverlaps) {
  // 3x3 kernel, stride 1, no padding on 3x3 image: the center pixel is
  // covered by exactly 1 output position but taps overlap in general; use
  // all-ones columns and verify counts.
  ConvGeom g{1, 3, 3, 2, 2, 1, 0};
  std::vector<float> cols(g.patch_len() * g.out_hw(), 1.0f);
  std::vector<float> image(9, 0.0f);
  col2im(cols.data(), g, image.data());
  // Corner pixel (0,0) is touched once; center (1,1) four times.
  EXPECT_FLOAT_EQ(image[0], 1.0f);
  EXPECT_FLOAT_EQ(image[4], 4.0f);
}

}  // namespace
}  // namespace safelight::nn
