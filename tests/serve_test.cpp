// Tests for the `safelight serve` subsystem: HTTP parsing, spec ingestion,
// registry listing, zoo train-once contention, slot admission/cancellation,
// per-slot store isolation, and the daemon end to end over real sockets.
//
// The end-to-end suite pins the serving contract of the paper sweeps: the
// bytes GET /v1/jobs/<id>/result returns are byte-identical to the JSON
// document `safelight run --json` writes for the same spec under the same
// environment (the child-process comparison below).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/experiment.hpp"
#include "core/result_store.hpp"
#include "core/zoo.hpp"
#include "dist/store_merge.hpp"
#include "gtest/gtest.h"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "serve/slot_manager.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

using serve::AdmissionError;
using serve::HttpError;
using serve::HttpRequest;
using serve::Job;
using serve::JobState;
using serve::SlotManager;
using serve::SlotManagerOptions;

bool wait_until(const std::function<bool()>& pred, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// A controllable experiment: runs until released or cancelled. Registered
// once in the global registry; tests reset the knobs before each use.
// ---------------------------------------------------------------------------

std::atomic<int> g_block_started{0};
std::atomic<bool> g_block_release{false};

void ensure_block_experiment() {
  static const bool registered = [] {
    core::ExperimentInfo info;
    info.name = "test_block";
    info.summary = "serve_test: spins until released or cancelled";
    info.default_seed_count = 1;
    info.run = [](const core::ExperimentSpec& spec,
                  core::RunContext& context) {
      g_block_started.fetch_add(1);
      context.note("test_block: spinning");
      while (!g_block_release.load()) {
        context.throw_if_cancelled("test_block");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      core::ExperimentResult result;
      result.payload = core::SusceptibilityReport{};
      (void)spec;
      return result;
    };
    core::ExperimentRegistry::global().add(std::move(info));
    return true;
  }();
  (void)registered;
  g_block_started.store(0);
  g_block_release.store(false);
}

// ---------------------------------------------------------------------------
// HTTP request parsing (pure, no sockets)
// ---------------------------------------------------------------------------

TEST(ServeHttp, ParsesRequestHead) {
  const HttpRequest request = serve::parse_request_head(
      "POST /v1/jobs HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length:  42 \r\n"
      "X-Mixed-CASE: Value\r\n");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/jobs");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.header("host"), "localhost");
  EXPECT_EQ(request.header("content-length"), "42");  // whitespace trimmed
  EXPECT_EQ(request.header("x-mixed-case"), "Value");  // names lower-cased
  EXPECT_EQ(request.header("absent"), "");
}

TEST(ServeHttp, RejectsMalformedRequestLine) {
  try {
    serve::parse_request_head("GET/nospace\r\n");
    FAIL() << "expected HttpError";
  } catch (const HttpError& error) {
    EXPECT_EQ(error.status(), 400);
  }
  EXPECT_THROW(serve::parse_request_head(""), HttpError);
  EXPECT_THROW(serve::parse_request_head("GET / HTTP/1.1\r\nbadheader\r\n"),
               HttpError);
}

TEST(ServeHttp, StatusReasonsCoverDaemonCodes) {
  EXPECT_EQ(serve::status_reason(200), "OK");
  EXPECT_EQ(serve::status_reason(202), "Accepted");
  EXPECT_EQ(serve::status_reason(400), "Bad Request");
  EXPECT_EQ(serve::status_reason(404), "Not Found");
  EXPECT_EQ(serve::status_reason(429), "Too Many Requests");
  EXPECT_EQ(serve::status_reason(503), "Service Unavailable");
  EXPECT_EQ(serve::status_reason(599), "Unknown");
}

// ---------------------------------------------------------------------------
// ExperimentSpec JSON ingestion (satellite: strict unknown-field rejection)
// ---------------------------------------------------------------------------

TEST(SpecFromJson, AbsentFieldsResolveLikeTheCli) {
  config::Overrides overrides;
  overrides.scale = Scale::kTiny;
  overrides.seed_count = 2;
  overrides.base_seed = 77;
  config::ScopedOverrides scoped(overrides);

  const core::ExperimentSpec spec =
      core::spec_from_json("{\"experiment\": \"susceptibility\"}");
  EXPECT_EQ(spec.experiment, "susceptibility");
  EXPECT_EQ(spec.model, nn::ModelId::kCnn1);
  EXPECT_EQ(spec.scale, Scale::kTiny);
  EXPECT_EQ(spec.seed_count, 2u);
  EXPECT_EQ(spec.base_seed, 77u);
  EXPECT_TRUE(spec.cache_dir.empty());  // store placement is the caller's
}

TEST(SpecFromJson, ExplicitFieldsOverrideTheEnvironment) {
  config::Overrides overrides;
  overrides.scale = Scale::kTiny;
  overrides.seed_count = 2;
  config::ScopedOverrides scoped(overrides);

  const core::ExperimentSpec spec = core::spec_from_json(
      "{\"experiment\": \"detection\", \"model\": \"resnet18\","
      " \"scale\": \"tiny\", \"seed_count\": 4, \"base_seed\": 9,"
      " \"variant\": \"L2_reg\", \"l2_strength\": 0.001,"
      " \"clean_runs\": 3, \"max_workers\": 2, \"verbose\": true}");
  EXPECT_EQ(spec.experiment, "detection");
  EXPECT_EQ(spec.model, nn::ModelId::kResNet18);
  EXPECT_EQ(spec.scale, Scale::kTiny);
  EXPECT_EQ(spec.seed_count, 4u);
  EXPECT_EQ(spec.base_seed, 9u);
  EXPECT_EQ(spec.variant, "L2_reg");
  EXPECT_FLOAT_EQ(spec.l2_strength, 0.001f);
  EXPECT_EQ(spec.clean_runs, 3u);
  EXPECT_EQ(spec.max_workers, 2u);
  EXPECT_TRUE(spec.verbose);
}

TEST(SpecFromJson, RejectsUnknownFieldLoudly) {
  try {
    core::spec_from_json(
        "{\"experiment\": \"susceptibility\", \"seedz\": 3}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("unknown field 'seedz'"), std::string::npos)
        << message;
    // Actionable: the message lists every supported field.
    EXPECT_NE(message.find("supported fields"), std::string::npos);
    EXPECT_NE(message.find("seed_count"), std::string::npos);
  }
}

TEST(SpecFromJson, RejectsCacheDirAsUnknown) {
  EXPECT_THROW(core::spec_from_json("{\"experiment\": \"susceptibility\","
                                    " \"cache_dir\": \"/tmp/x\"}"),
               std::invalid_argument);
}

TEST(SpecFromJson, TypeMismatchNamesTheField) {
  try {
    core::spec_from_json(
        "{\"experiment\": \"susceptibility\", \"seed_count\": \"three\"}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("spec field 'seed_count'"),
              std::string::npos)
        << error.what();
  }
}

TEST(SpecFromJson, RejectsMalformedDocuments) {
  try {
    core::spec_from_json("{not json");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("not valid JSON"),
              std::string::npos);
  }
  EXPECT_THROW(core::spec_from_json("[1, 2]"), std::invalid_argument);
  try {
    core::spec_from_json("{}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("missing required field 'experiment'"),
              std::string::npos);
    EXPECT_NE(message.find("susceptibility"), std::string::npos);
  }
  EXPECT_THROW(core::spec_from_json("{\"experiment\": \"no_such\"}"),
               std::invalid_argument);
  // validate() still runs: explicit invalid values are rejected too.
  EXPECT_THROW(core::spec_from_json(
                   "{\"experiment\": \"susceptibility\", \"seed_count\": 0}"),
               std::invalid_argument);
  EXPECT_THROW(core::spec_from_json("{\"experiment\": \"susceptibility\","
                                    " \"variant\": \"NoSuchVariant\"}"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry listing (satellite: `safelight list --json` schema)
// ---------------------------------------------------------------------------

TEST(RegistryListing, JsonSchemaCoversEveryExperiment) {
  const std::string text = core::registry_listing_json();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  const JsonValue doc = JsonValue::parse(text);
  ASSERT_TRUE(doc.is_object());
  const auto& experiments = doc.at("experiments").as_array();
  const auto names = core::ExperimentRegistry::global().names();
  ASSERT_EQ(experiments.size(), names.size());
  for (std::size_t i = 0; i < experiments.size(); ++i) {
    const JsonValue& entry = experiments[i];
    EXPECT_EQ(entry.at("name").as_string(), names[i]);
    EXPECT_FALSE(entry.at("summary").as_string().empty());
    EXPECT_GE(entry.at("default_seed_count").as_uint(), 1u);
    ASSERT_TRUE(entry.at("csv_files").is_array());
  }
  // The five paper sweeps are always present, in figure order.
  EXPECT_EQ(experiments[0].at("name").as_string(), "susceptibility");
  EXPECT_EQ(experiments[0].at("csv_files").as_array()[0].as_string(),
            "fig7_susceptibility");

  const auto& fields = doc.at("spec_fields").as_array();
  bool has_experiment = false;
  for (const JsonValue& field : fields) {
    EXPECT_NE(field.as_string(), "cache_dir");
    if (field.as_string() == "experiment") has_experiment = true;
  }
  EXPECT_TRUE(has_experiment);
}

// ---------------------------------------------------------------------------
// ModelZoo train-once under contention (satellite 2)
// ---------------------------------------------------------------------------

TEST(ZooContention, EightCallersTrainOnceBitwiseIdentical) {
  metrics::reset();
  metrics::arm_collection();
  const core::ExperimentSetup setup =
      core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  const core::VariantSpec variant = core::variant_by_name("Original");

  TempDir contended_dir("zoo_contended");
  core::ModelZoo contended(contended_dir.path());
  const std::uint64_t before = metrics::counter("zoo.trainings").value();

  std::vector<std::thread> threads;
  std::atomic<int> loaded{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto model = contended.get_or_train(setup, variant);
      if (model != nullptr) loaded.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(loaded.load(), 8);
  // The entry trained exactly once; seven callers waited and loaded it.
  EXPECT_EQ(metrics::counter("zoo.trainings").value() - before, 1u);

  // Deterministic training: the contended cache file is bitwise identical
  // to one produced by a sequential zoo.
  TempDir sequential_dir("zoo_sequential");
  core::ModelZoo sequential(sequential_dir.path());
  ASSERT_NE(sequential.get_or_train(setup, variant), nullptr);
  const std::string contended_bytes =
      read_file_bytes(contended.entry_path(setup, variant));
  const std::string sequential_bytes =
      read_file_bytes(sequential.entry_path(setup, variant));
  ASSERT_FALSE(contended_bytes.empty());
  EXPECT_EQ(contended_bytes, sequential_bytes);
  metrics::reset();
}

TEST(ZooContention, DistinctEntriesTrainConcurrently) {
  const core::ExperimentSetup setup =
      core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  TempDir dir("zoo_distinct");
  core::ModelZoo zoo(dir.path());
  std::atomic<int> loaded{0};
  std::vector<std::thread> threads;
  for (const char* name : {"Original", "L2_reg"}) {
    threads.emplace_back([&, name] {
      auto model = zoo.get_or_train(setup, core::variant_by_name(name));
      if (model != nullptr) loaded.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(loaded.load(), 2);
  EXPECT_TRUE(zoo.has_entry(setup, core::variant_by_name("Original")));
  EXPECT_TRUE(zoo.has_entry(setup, core::variant_by_name("L2_reg")));
}

// ---------------------------------------------------------------------------
// SlotManager admission, queueing and cancellation
// ---------------------------------------------------------------------------

TEST(SlotManagerAdmission, QueueFullRejectsWith429) {
  ensure_block_experiment();
  TempDir dir("serve_admission");
  SlotManagerOptions options;
  options.slots = 1;
  options.queue_depth = 1;
  options.root_dir = dir.path() + "/slots";
  options.zoo_dir = dir.path() + "/zoo";
  SlotManager manager(options);

  const core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("test_block");
  const auto running = manager.submit(spec);
  ASSERT_TRUE(wait_until([&] { return g_block_started.load() == 1; }, 10.0));
  EXPECT_EQ(running->state(), JobState::kRunning);
  EXPECT_EQ(manager.busy_slots(), 1u);

  const auto queued = manager.submit(spec);
  EXPECT_EQ(queued->state(), JobState::kQueued);
  EXPECT_EQ(queued->slot(), -1);
  EXPECT_EQ(manager.queued_jobs(), 1u);

  // Slot busy + queue full: the third submission is never admitted.
  try {
    manager.submit(spec);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& error) {
    EXPECT_EQ(error.status(), 429);
    EXPECT_NE(std::string(error.what()).find("queue is full"),
              std::string::npos)
        << error.what();
  }

  // Cancelling the queued job terminalizes it without touching a slot.
  EXPECT_TRUE(manager.cancel(queued->id()));
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_EQ(manager.queued_jobs(), 0u);

  // Cancelling the running job is cooperative: the flag is set here, the
  // terminal state lands when the experiment polls it.
  EXPECT_TRUE(manager.cancel(running->id()));
  ASSERT_TRUE(wait_until([&] { return running->terminal(); }, 10.0));
  EXPECT_EQ(running->state(), JobState::kCancelled);

  EXPECT_FALSE(manager.cancel("no_such_job"));
  // Idempotent DELETE: cancelling a terminal job reports true, no effect.
  EXPECT_TRUE(manager.cancel(running->id()));

  manager.drain();
  try {
    manager.submit(spec);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& error) {
    EXPECT_EQ(error.status(), 503);
  }
}

TEST(SlotManagerAdmission, JobEventsRecordTheLifecycle) {
  ensure_block_experiment();
  TempDir dir("serve_events");
  SlotManagerOptions options;
  options.slots = 1;
  options.queue_depth = 1;
  options.root_dir = dir.path() + "/slots";
  options.zoo_dir = dir.path() + "/zoo";
  SlotManager manager(options);

  const auto job = manager.submit(
      core::ExperimentRegistry::global().default_spec("test_block"));
  ASSERT_TRUE(wait_until([&] { return g_block_started.load() == 1; }, 10.0));
  g_block_release.store(true);
  ASSERT_TRUE(wait_until([&] { return job->terminal(); }, 10.0));
  EXPECT_EQ(job->state(), JobState::kDone);
  EXPECT_FALSE(job->result_json().empty());

  const std::vector<std::string> events = job->wait_events(0, 0);
  ASSERT_GE(events.size(), 4u);  // queued, running, progress, result
  std::vector<std::string> types;
  for (const std::string& line : events) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');  // NDJSON: exactly one newline per event
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    const JsonValue event = JsonValue::parse(line);
    EXPECT_EQ(event.at("job").as_string(), job->id());
    types.push_back(event.at("type").as_string());
  }
  EXPECT_EQ(types.front(), "queued");
  EXPECT_EQ(types[1], "running");
  EXPECT_EQ(types.back(), "result");
  // The result event wraps the exact result document bytes.
  const JsonValue last = JsonValue::parse(events.back());
  EXPECT_EQ(last.at("result").as_string(), job->result_json());

  // wait_events past the end of a terminal job returns the empty batch
  // immediately — the stream-complete signal.
  EXPECT_TRUE(job->wait_events(events.size(), 0).empty());
  manager.drain();
}

TEST(SlotManagerAdmission, DrainCancelsQueuedAndRunningJobs) {
  ensure_block_experiment();
  TempDir dir("serve_drain");
  SlotManagerOptions options;
  options.slots = 1;
  options.queue_depth = 2;
  options.root_dir = dir.path() + "/slots";
  options.zoo_dir = dir.path() + "/zoo";
  SlotManager manager(options);

  const core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("test_block");
  const auto running = manager.submit(spec);
  ASSERT_TRUE(wait_until([&] { return g_block_started.load() == 1; }, 10.0));
  const auto queued = manager.submit(spec);

  manager.drain();  // joins the slot threads
  EXPECT_EQ(running->state(), JobState::kCancelled);
  EXPECT_EQ(queued->state(), JobState::kCancelled);
  EXPECT_TRUE(manager.draining());
  manager.drain();  // idempotent
}

// ---------------------------------------------------------------------------
// Per-slot result-store isolation (satellite 3)
// ---------------------------------------------------------------------------

std::vector<std::string> csv_files_under(const std::string& dir) {
  std::vector<std::string> out;
  if (!std::filesystem::exists(dir)) return out;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      out.push_back(entry.path().string());
    }
  }
  return out;
}

TEST(SlotStores, ConcurrentIdenticalJobsStayIsolatedAndMergeCleanly) {
  config::Overrides overrides;
  overrides.scale = Scale::kTiny;
  config::ScopedOverrides scoped(overrides);

  TempDir dir("serve_stores");
  SlotManagerOptions options;
  options.slots = 2;
  options.queue_depth = 2;
  options.root_dir = dir.path() + "/slots";
  options.zoo_dir = dir.path() + "/zoo";
  SlotManager manager(options);

  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("susceptibility");
  spec.scale = Scale::kTiny;
  spec.seed_count = 1;

  // Two identical tenants run concurrently: same spec, same zoo entry,
  // but each slot writes its own store directory.
  const auto first = manager.submit(spec);
  const auto second = manager.submit(spec);
  ASSERT_TRUE(wait_until(
      [&] { return first->terminal() && second->terminal(); }, 300.0));
  ASSERT_EQ(first->state(), JobState::kDone) << first->error();
  ASSERT_EQ(second->state(), JobState::kDone) << second->error();

  // Determinism across slots: both tenants got the same result bytes.
  ASSERT_FALSE(first->result_json().empty());
  EXPECT_EQ(first->result_json(), second->result_json());

  // Isolation: each slot produced its own sweep store; the writer-lock
  // seam was never shared (a shared store would have interleaved one CSV).
  const auto slot0 = csv_files_under(options.root_dir + "/slot0");
  const auto slot1 = csv_files_under(options.root_dir + "/slot1");
  ASSERT_FALSE(slot0.empty());
  ASSERT_FALSE(slot1.empty());
  const auto rows0 = core::read_store_entries(slot0.front());
  const auto rows1 = core::read_store_entries(slot1.front());
  ASSERT_FALSE(rows0.empty());
  EXPECT_EQ(rows0.size(), rows1.size());

  // The per-slot stores merge into one without conflicts: identical rows
  // dedupe, nothing is lost (the dist-layer multi-writer contract).
  std::vector<std::string> sources = slot0;
  sources.insert(sources.end(), slot1.begin(), slot1.end());
  const std::string merged_csv = dir.path() + "/merged.csv";
  const dist::MergeStats stats = dist::merge_stores(sources, merged_csv);
  EXPECT_EQ(stats.sources, sources.size());
  EXPECT_EQ(stats.appended, rows0.size());
  EXPECT_EQ(stats.duplicates, rows1.size());
  EXPECT_EQ(core::read_store_entries(merged_csv).size(), rows0.size());
  manager.drain();
}

// ---------------------------------------------------------------------------
// End-to-end HTTP over real sockets
// ---------------------------------------------------------------------------

struct SimpleResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// One-shot HTTP client: connect, send, read to EOF (every daemon response
/// is Connection: close or close-delimited).
SimpleResponse http_exchange(std::uint16_t port, const std::string& request) {
  SimpleResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return response;
  response.head = raw.substr(0, split);
  response.body = raw.substr(split + 4);
  if (response.head.size() > 12 && response.head.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(response.head.substr(9, 3));
  }
  return response;
}

SimpleResponse http_get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target +
                                 " HTTP/1.1\r\nHost: t\r\n"
                                 "Connection: close\r\n\r\n");
}

SimpleResponse http_post(std::uint16_t port, const std::string& target,
                         const std::string& body) {
  return http_exchange(port, "POST " + target + " HTTP/1.1\r\nHost: t\r\n" +
                                 "Content-Length: " +
                                 std::to_string(body.size()) +
                                 "\r\nConnection: close\r\n\r\n" + body);
}

SimpleResponse http_delete(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "DELETE " + target +
                                 " HTTP/1.1\r\nHost: t\r\n"
                                 "Connection: close\r\n\r\n");
}

/// In-process daemon on an ephemeral port, stopped + joined on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(const std::string& root, std::size_t slots = 2,
                         std::size_t queue_depth = 2) {
    serve::ServeOptions options;
    options.port = 0;
    options.slots = slots;
    options.queue_depth = queue_depth;
    options.root_dir = root + "/slots";
    options.zoo_dir = root + "/zoo";
    options.stop = &stop_;
    server_ = std::make_unique<serve::Server>(options);
    thread_ = std::thread([this] { exit_code_ = server_->serve(); });
  }

  ~ServerFixture() { shutdown(); }

  int shutdown() {
    if (thread_.joinable()) {
      stop_.store(true);
      thread_.join();
    }
    return exit_code_;
  }

  std::uint16_t port() const { return server_->port(); }

 private:
  std::atomic<bool> stop_{false};
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

std::string poll_job_state(std::uint16_t port, const std::string& job) {
  const SimpleResponse response = http_get(port, "/v1/jobs/" + job);
  if (response.status != 200) return "";
  return JsonValue::parse(response.body).at("state").as_string();
}

TEST(ServeEndToEnd, ResultBytesMatchTheCliRun) {
  TempDir dir("serve_e2e");
  const std::string trace_path = dir.path() + "/serve.trace.json";
  trace::init(trace_path);
  metrics::reset();
  metrics::arm_collection();

  config::Overrides overrides;
  overrides.scale = Scale::kTiny;
  overrides.seed_count = 1;
  config::ScopedOverrides scoped(overrides);

  std::string result_bytes;
  {
    ServerFixture fixture(dir.path());
    const std::uint16_t port = fixture.port();
    ASSERT_NE(port, 0);

    // healthz before any job: idle daemon.
    const SimpleResponse health = http_get(port, "/healthz");
    ASSERT_EQ(health.status, 200);
    EXPECT_EQ(JsonValue::parse(health.body).at("status").as_string(), "ok");

    // Submit; absent spec fields resolve through the same config chain the
    // CLI uses (tiny scale, 1 seed via the overrides above).
    const SimpleResponse submitted = http_post(
        port, "/v1/jobs",
        "{\"experiment\": \"susceptibility\", \"model\": \"cnn1\"}");
    ASSERT_EQ(submitted.status, 202) << submitted.body;
    const JsonValue accepted = JsonValue::parse(submitted.body);
    const std::string job = accepted.at("job").as_string();
    EXPECT_EQ(accepted.at("result").as_string(), "/v1/jobs/" + job +
                                                     "/result");

    ASSERT_TRUE(wait_until(
        [&] { return poll_job_state(port, job) == "done"; }, 300.0));

    // The event stream is complete NDJSON: queued first, result last, each
    // line a standalone JSON object.
    const SimpleResponse events =
        http_get(port, "/v1/jobs/" + job + "/events");
    ASSERT_EQ(events.status, 200);
    EXPECT_NE(events.head.find("application/x-ndjson"), std::string::npos);
    std::vector<std::string> types;
    std::size_t pos = 0;
    while (pos < events.body.size()) {
      const std::size_t eol = events.body.find('\n', pos);
      ASSERT_NE(eol, std::string::npos) << "unterminated NDJSON line";
      const std::string line = events.body.substr(pos, eol - pos);
      ASSERT_FALSE(line.empty()) << "blank NDJSON line";
      types.push_back(JsonValue::parse(line).at("type").as_string());
      pos = eol + 1;
    }
    ASSERT_GE(types.size(), 3u);
    EXPECT_EQ(types.front(), "queued");
    EXPECT_EQ(types.back(), "result");

    const SimpleResponse result =
        http_get(port, "/v1/jobs/" + job + "/result");
    ASSERT_EQ(result.status, 200);
    result_bytes = result.body;
    ASSERT_FALSE(result_bytes.empty());

    // The jobs index sees the finished job.
    const SimpleResponse index = http_get(port, "/v1/jobs");
    ASSERT_EQ(index.status, 200);
    const JsonValue listing = JsonValue::parse(index.body);
    ASSERT_EQ(listing.at("jobs").as_array().size(), 1u);
    EXPECT_EQ(listing.at("jobs").as_array()[0].at("state").as_string(),
              "done");

    // Metrics carry the serving counters.
    const SimpleResponse metrics_response = http_get(port, "/metrics");
    ASSERT_EQ(metrics_response.status, 200);
    EXPECT_NE(metrics_response.body.find("safelight.metrics.v1"),
              std::string::npos);
    EXPECT_NE(metrics_response.body.find("serve.jobs.submitted"),
              std::string::npos);
    EXPECT_NE(metrics_response.body.find("zoo.trainings"),
              std::string::npos);

    EXPECT_EQ(fixture.shutdown(), 130);  // the interrupted-run convention
  }

  // The serving contract: HTTP result bytes == the JSON document
  // `safelight run --json` writes for the same spec under the same
  // environment (same zoo, so the child loads the cached model).
  const ProcessResult cli = run_process(
      {SAFELIGHT_CLI_BIN, "run", "susceptibility", "--model", "cnn1",
       "--json"},
      {"SAFELIGHT_SCALE=tiny", "SAFELIGHT_SEEDS=1",
       "SAFELIGHT_ZOO=" + dir.path() + "/zoo",
       "SAFELIGHT_OUT=" + dir.path() + "/out"},
      dir.path(), 300.0);
  ASSERT_EQ(cli.exit_code, 0) << cli.stderr_text;
  const std::string cli_bytes =
      read_file_bytes(dir.path() + "/out/susceptibility_cnn1.json");
  ASSERT_FALSE(cli_bytes.empty());
  EXPECT_EQ(result_bytes, cli_bytes);

  // The traced run recorded per-job spans without changing the output.
  trace::flush();
  trace::reset();
  const std::string trace_bytes = read_file_bytes(trace_path);
  EXPECT_NE(trace_bytes.find("serve.job"), std::string::npos);
  EXPECT_NE(trace_bytes.find("http.POST"), std::string::npos);
  metrics::reset();
}

TEST(ServeEndToEnd, RejectsBadSpecsAndUnknownRoutes) {
  ensure_block_experiment();
  TempDir dir("serve_e2e_errors");
  ServerFixture fixture(dir.path(), /*slots=*/1, /*queue_depth=*/0);
  const std::uint16_t port = fixture.port();

  // Unknown field: 400 with the actionable field list (satellite 6 over
  // the wire).
  const SimpleResponse bad = http_post(
      port, "/v1/jobs", "{\"experiment\": \"susceptibility\", \"seedz\": 3}");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("unknown field 'seedz'"), std::string::npos)
      << bad.body;
  EXPECT_NE(bad.body.find("supported fields"), std::string::npos);

  EXPECT_EQ(http_post(port, "/v1/jobs", "{not json").status, 400);
  EXPECT_EQ(http_post(port, "/v1/jobs", "{}").status, 400);
  EXPECT_EQ(http_get(port, "/v1/jobs/j999").status, 404);
  EXPECT_EQ(http_get(port, "/no/such/route").status, 404);
  EXPECT_EQ(http_delete(port, "/v1/jobs/j999").status, 404);
  EXPECT_EQ(http_exchange(port, "PUT /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                                "Connection: close\r\n\r\n")
                .status,
            405);
  EXPECT_EQ(http_exchange(port, "garbage\r\n\r\n").status, 400);

  // Admission over the wire: one blocking job fills the only slot; with
  // queue_depth 0 the next submission answers 429 + Retry-After.
  const SimpleResponse first =
      http_post(port, "/v1/jobs", "{\"experiment\": \"test_block\"}");
  ASSERT_EQ(first.status, 202) << first.body;
  const std::string job = JsonValue::parse(first.body).at("job").as_string();
  ASSERT_TRUE(wait_until([&] { return g_block_started.load() == 1; }, 10.0));

  const SimpleResponse rejected =
      http_post(port, "/v1/jobs", "{\"experiment\": \"test_block\"}");
  EXPECT_EQ(rejected.status, 429);
  EXPECT_NE(rejected.head.find("Retry-After: 1"), std::string::npos)
      << rejected.head;

  // No result while running: 409 names the state.
  const SimpleResponse early = http_get(port, "/v1/jobs/" + job + "/result");
  EXPECT_EQ(early.status, 409);
  EXPECT_NE(early.body.find("running"), std::string::npos);

  // Cooperative cancel over the wire.
  const SimpleResponse cancelled = http_delete(port, "/v1/jobs/" + job);
  ASSERT_EQ(cancelled.status, 200);
  EXPECT_EQ(JsonValue::parse(cancelled.body).at("status").as_string(),
            "cancelling");
  ASSERT_TRUE(wait_until(
      [&] { return poll_job_state(port, job) == "cancelled"; }, 10.0));
  EXPECT_EQ(http_get(port, "/v1/jobs/" + job + "/result").status, 409);
  EXPECT_EQ(fixture.shutdown(), 130);
}

// ---------------------------------------------------------------------------
// The real CLI as a child process: `serve` signal handling, `list --json`
// ---------------------------------------------------------------------------

TEST(ServeCli, SigtermDrainsAndExits130) {
  TempDir dir("serve_cli_sigterm");
  const ProcessResult result = run_process(
      {SAFELIGHT_CLI_BIN, "serve", "--port", "0", "--slots", "1"},
      {"SAFELIGHT_SCALE=tiny", "SAFELIGHT_ZOO=" + dir.path() + "/zoo"},
      dir.path(), /*timeout_s=*/30.0, /*kill_after_s=*/2.0, SIGTERM);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.exit_code, 130) << result.stderr_text;
  EXPECT_NE(result.stdout_text.find("[serve] listening on 127.0.0.1:"),
            std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("[serve] stopped"), std::string::npos);
}

TEST(ServeCli, ListJsonMatchesTheLibraryListing) {
  TempDir dir("serve_cli_list");
  const ProcessResult json_run =
      run_process({SAFELIGHT_CLI_BIN, "list", "--json"}, {}, dir.path(), 30.0);
  ASSERT_EQ(json_run.exit_code, 0) << json_run.stderr_text;
  // Byte-equality only holds while this process's registry is pristine
  // (other serve tests register "test_block"; under ctest each test runs
  // in its own process, so the strong check is the one that gates).
  if (!core::ExperimentRegistry::global().contains("test_block")) {
    EXPECT_EQ(json_run.stdout_text, core::registry_listing_json());
  }
  const JsonValue listing = JsonValue::parse(json_run.stdout_text);
  EXPECT_EQ(listing.at("experiments").as_array().size(), 5u);
  EXPECT_EQ(listing.at("experiments").as_array()[0].at("name").as_string(),
            "susceptibility");

  const ProcessResult plain =
      run_process({SAFELIGHT_CLI_BIN, "list"}, {}, dir.path(), 30.0);
  ASSERT_EQ(plain.exit_code, 0);
  EXPECT_NE(plain.stdout_text.find("susceptibility"), std::string::npos);

  const ProcessResult bad = run_process(
      {SAFELIGHT_CLI_BIN, "list", "--bogus"}, {}, dir.path(), 30.0);
  EXPECT_EQ(bad.exit_code, 2);  // usage errors keep the exit-2 convention
}

}  // namespace
}  // namespace safelight
