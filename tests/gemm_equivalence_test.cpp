// Golden-equivalence tests: the packed, register-tiled kernels in nn/gemm.hpp
// must reproduce the naive reference kernels in nn/gemm_ref.hpp bit for bit
// (same ascending-k single-accumulator reduction per output element, no FMA
// contraction), across random shapes, edge shapes and both epilogues — and
// per compute-backend variant: every variant compiled into this binary that
// the host CPU supports is forced in turn and held to the same byte-identity
// contract, so runtime dispatch can never change a result.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/scratch.hpp"
#include "nn/backend.hpp"
#include "nn/gemm.hpp"
#include "nn/gemm_ref.hpp"

namespace safelight::nn {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return out;
}

/// Bitwise comparison: EXPECT_EQ on floats would treat -0.0f == 0.0f and
/// NaN != NaN; the contract here is byte identity.
void expect_bitwise_equal(const std::vector<float>& got,
                          const std::vector<float>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)),
            0)
      << label << ": outputs differ bitwise";
}

struct GemmCase {
  std::size_t m, k, n;
  bool accumulate;
  bool bias;
};

const GemmCase kCases[] = {
    {1, 1, 1, false, false},   {1, 1, 1, true, true},
    {1, 7, 1, false, true},    {3, 1, 5, false, false},
    {4, 32, 32, false, true},  {5, 33, 31, true, false},
    {8, 64, 64, false, false}, {13, 17, 19, true, true},
    {16, 100, 40, false, true}, {37, 5, 129, true, true},
    {64, 64, 64, false, false},
};

std::string case_label(const char* op, const GemmCase& c,
                       const std::string& variant) {
  return std::string(op) + " [" + variant + "] m=" + std::to_string(c.m) +
         " k=" + std::to_string(c.k) + " n=" + std::to_string(c.n);
}

void check_gemm_cases(const std::string& variant) {
  Rng rng(101);
  for (const auto& c : kCases) {
    const auto a = random_vec(c.m * c.k, rng);
    const auto b = random_vec(c.k * c.n, rng);
    const auto bias = random_vec(c.m, rng);
    auto got = random_vec(c.m * c.n, rng);  // accumulate needs prior content
    auto want = got;
    gemm(a.data(), b.data(), got.data(), c.m, c.k, c.n, c.accumulate,
         c.bias ? bias.data() : nullptr);
    gemm_ref(a.data(), b.data(), want.data(), c.m, c.k, c.n, c.accumulate,
             c.bias ? bias.data() : nullptr);
    expect_bitwise_equal(got, want, case_label("gemm", c, variant));
  }
}

void check_gemm_bt_cases(const std::string& variant) {
  Rng rng(102);
  for (const auto& c : kCases) {
    const auto a = random_vec(c.m * c.k, rng);
    const auto b = random_vec(c.n * c.k, rng);
    const auto bias = random_vec(c.n, rng);
    auto got = random_vec(c.m * c.n, rng);
    auto want = got;
    gemm_bt(a.data(), b.data(), got.data(), c.m, c.k, c.n, c.accumulate,
            c.bias ? bias.data() : nullptr);
    gemm_bt_ref(a.data(), b.data(), want.data(), c.m, c.k, c.n, c.accumulate,
                c.bias ? bias.data() : nullptr);
    expect_bitwise_equal(got, want, case_label("gemm_bt", c, variant));
  }
}

void check_gemm_at_cases(const std::string& variant) {
  Rng rng(103);
  for (const auto& c : kCases) {
    const auto a = random_vec(c.k * c.m, rng);
    const auto b = random_vec(c.k * c.n, rng);
    auto got = random_vec(c.m * c.n, rng);
    auto want = got;
    gemm_at(a.data(), b.data(), got.data(), c.m, c.k, c.n, c.accumulate);
    gemm_at_ref(a.data(), b.data(), want.data(), c.m, c.k, c.n, c.accumulate);
    expect_bitwise_equal(got, want, case_label("gemm_at", c, variant));
  }
}

TEST(GemmEquivalence, GemmMatchesReferenceBitwise) {
  check_gemm_cases("auto");
}

TEST(GemmEquivalence, GemmBtMatchesReferenceBitwise) {
  check_gemm_bt_cases("auto");
}

TEST(GemmEquivalence, GemmAtMatchesReferenceBitwise) {
  check_gemm_at_cases("auto");
}

TEST(GemmEquivalence, EveryCompiledVariantMatchesReferenceBitwise) {
  // The backend matrix: force each registered variant the host supports and
  // hold it to byte identity with gemm_ref across the full case table. An
  // unsupported variant (e.g. AVX-512 compiled in, run on an AVX2 host) is
  // skipped but logged — the scalar baseline is always exercised.
  std::size_t checked = 0;
  for (const backend::ComputeBackend* variant : backend::registered()) {
    if (!variant->supported()) {
      GTEST_LOG_(INFO) << "variant " << variant->name()
                       << " compiled in but not supported on this CPU";
      continue;
    }
    backend::ScopedBackend forced(*variant);
    check_gemm_cases(variant->name());
    check_gemm_bt_cases(variant->name());
    check_gemm_at_cases(variant->name());
    ++checked;
  }
  EXPECT_GE(checked, 1u);  // scalar at minimum
}

TEST(GemmEquivalence, ZeroMatricesProduceZeros) {
  const std::size_t m = 6, k = 9, n = 20;
  const std::vector<float> a(m * k, 0.0f), b(k * n, 0.0f);
  std::vector<float> c(m * n, 123.0f);
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (float v : c) EXPECT_EQ(v, 0.0f);
  // accumulate=true must leave prior contents intact.
  std::vector<float> acc(m * n, 0.5f);
  gemm(a.data(), b.data(), acc.data(), m, k, n, /*accumulate=*/true);
  for (float v : acc) EXPECT_EQ(v, 0.5f);
}

TEST(GemmEquivalence, EmptyDimensionsAreNoops) {
  std::vector<float> c(4, 7.0f);
  const std::vector<float> a(8, 1.0f), b(8, 1.0f);
  gemm(a.data(), b.data(), c.data(), 0, 2, 2);
  gemm_bt(a.data(), b.data(), c.data(), 2, 2, 0);
  for (float v : c) EXPECT_EQ(v, 7.0f);
}

TEST(GemmEquivalence, FusedBiasMatchesSeparateBiasPass) {
  Rng rng(104);
  const std::size_t m = 9, k = 21, n = 33;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto bias = random_vec(m, rng);
  std::vector<float> fused(m * n), separate(m * n);
  gemm(a.data(), b.data(), fused.data(), m, k, n, false, bias.data());
  gemm(a.data(), b.data(), separate.data(), m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) separate[i * n + j] += bias[i];
  }
  expect_bitwise_equal(fused, separate, "fused row bias");
}

// ---------------------------------------------------------------- scratch

TEST(ScratchArena, FramesReleaseAndReuse) {
  ScratchArena arena;
  float* first = nullptr;
  {
    const ScratchArena::Frame frame(arena);
    first = arena.alloc(100);
    first[0] = 1.0f;
    first[99] = 2.0f;
  }
  const std::size_t grown = arena.capacity();
  {
    const ScratchArena::Frame frame(arena);
    float* again = arena.alloc(100);
    EXPECT_EQ(again, first);  // same storage reused after the frame closed
  }
  EXPECT_EQ(arena.capacity(), grown);  // no further growth
}

TEST(ScratchArena, PointersStayValidAcrossGrowth) {
  ScratchArena arena;
  const ScratchArena::Frame frame(arena);
  float* small = arena.alloc(16);
  small[0] = 42.0f;
  // Force new blocks: earlier allocations must remain intact.
  for (int i = 0; i < 8; ++i) {
    float* big = arena.alloc(1u << 16);
    big[0] = static_cast<float>(i);
  }
  EXPECT_EQ(small[0], 42.0f);
}

TEST(ScratchArena, ZeroedAllocationIsZero) {
  ScratchArena arena;
  {
    const ScratchArena::Frame frame(arena);
    float* dirty = arena.alloc(64);
    for (std::size_t i = 0; i < 64; ++i) dirty[i] = 9.0f;
  }
  // The same storage is re-issued dirty by alloc, zeroed by alloc_zeroed.
  const ScratchArena::Frame frame(arena);
  float* zeroed = arena.alloc_zeroed(64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(zeroed[i], 0.0f);
}

}  // namespace
}  // namespace safelight::nn
