// Golden-file regression tests: tiny-scale CSV/JSON content is checked in
// under tests/golden/ and must regenerate byte-identically. The whole stack
// under the published numbers — synthetic data, training, conditioning, the
// packed GEMM, the prefix-activation cache, the thread-pool fan-out,
// detector scoring — is deterministic by contract; these tests turn that
// contract into a tripwire, so a kernel, cache or threading change can
// never silently shift the figures again.
//
// Since the unified experiment API (core/experiment.hpp), all documents are
// produced through ExperimentResult::to_csv()/to_json() — the exact code
// path of the `safelight` CLI and the per-figure bench wrappers — so these
// goldens also pin "CLI output == legacy bench output".
//
// To regenerate after an *intentional* numbers change:
//   SAFELIGHT_UPDATE_GOLDEN=1 ctest -R Golden
// and commit the diff under tests/golden/ with the explanation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "core/experiment.hpp"
#include "test_util.hpp"

#ifndef SAFELIGHT_GOLDEN_DIR
#error "SAFELIGHT_GOLDEN_DIR must point at tests/golden"
#endif

namespace safelight {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(SAFELIGHT_GOLDEN_DIR) + "/" + name;
}

/// Compares `content` against the checked-in golden file byte for byte.
/// With SAFELIGHT_UPDATE_GOLDEN=1 the file is (re)written instead — the
/// explicit opt-in for intentional numbers changes.
void expect_matches_golden(const std::string& content,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (env_int("SAFELIGHT_UPDATE_GOLDEN", 0) != 0) {
    std::filesystem::create_directories(SAFELIGHT_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fault::ptp("golden.update.write");  // crash: truncated golden file
    out << content;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (generate with SAFELIGHT_UPDATE_GOLDEN=1)";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  // EXPECT_EQ on the full strings would dump both files on mismatch; find
  // the first differing line for a readable failure instead.
  if (content == golden) return;
  std::istringstream got(content);
  std::istringstream want(golden);
  std::string got_line, want_line;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool has_got = static_cast<bool>(std::getline(got, got_line));
    const bool has_want = static_cast<bool>(std::getline(want, want_line));
    if (!has_got && !has_want) break;
    if (!has_got) got_line = "<eof>";
    if (!has_want) want_line = "<eof>";
    ASSERT_EQ(got_line, want_line)
        << name << " diverges at line " << line
        << " — if the change is intentional, regenerate with "
           "SAFELIGHT_UPDATE_GOLDEN=1 and commit the diff";
  }
  FAIL() << name << " differs from the regenerated content";
}

/// Renders the documents of one result exactly as the `safelight` CLI
/// writes them: header row, then data rows; multiple documents of one
/// experiment concatenate in emission order.
std::string render_csv(const core::ExperimentResult& result) {
  std::string out;
  for (const core::CsvDocument& doc : result.to_csv()) {
    for (std::size_t c = 0; c < doc.header.size(); ++c) {
      if (c != 0) out += ',';
      out += doc.header[c];
    }
    out += '\n';
    for (const auto& row : doc.rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c != 0) out += ',';
        out += row[c];
      }
      out += '\n';
    }
  }
  return out;
}

core::ExperimentSpec tiny_spec(const std::string& experiment,
                               const std::string& cache_dir) {
  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec(experiment);
  spec.model = nn::ModelId::kCnn1;
  spec.scale = Scale::kTiny;
  spec.cache_dir = cache_dir;
  return spec;
}

TEST(Golden, Fig7SusceptibilityCnn1Tiny) {
  TempDir dir("golden_fig7");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  core::ExperimentSpec spec = tiny_spec("susceptibility", dir.path());
  spec.seed_count = 2;
  const core::ExperimentResult result =
      core::ExperimentRegistry::global().run(spec, context);

  // Exactly the fig7_susceptibility.csv content a
  // `safelight run susceptibility --model cnn1` writes at this spec.
  expect_matches_golden(render_csv(result), "fig7_cnn1_tiny.csv");

  // The JSON document of the same run (`--json`), pinning the full
  // serialization stack: writer layout, escaping, number formatting.
  expect_matches_golden(result.to_json(), "susceptibility_cnn1_tiny.json");
}

TEST(Golden, FigDetectionCnn1Tiny) {
  TempDir dir("golden_fig_detection");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  core::ExperimentSpec spec = tiny_spec("detection", dir.path());
  spec.seed_count = 1;
  spec.clean_runs = 3;
  const core::ExperimentResult result =
      core::ExperimentRegistry::global().run(spec, context);

  // fig_detection.csv + fig_detection_roc.csv, concatenated in emission
  // order — the score rows and the ROC curves assembled from them.
  expect_matches_golden(render_csv(result), "fig_detection_cnn1_tiny.csv");
}

TEST(Golden, FigCampaignCnn1Tiny) {
  TempDir dir("golden_fig_campaign");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  // Empty spec.campaigns selects attack::standard_campaigns() — the same
  // red-team set `safelight run campaign` sweeps.
  const core::ExperimentSpec spec = tiny_spec("campaign", dir.path());
  const core::ExperimentResult result =
      core::ExperimentRegistry::global().run(spec, context);

  // fig_campaign_phases.csv + fig_campaign.csv, concatenated in emission
  // order — per-phase accuracies and the raw per-check detector scores.
  expect_matches_golden(render_csv(result), "fig_campaign_cnn1_tiny.csv");
}

}  // namespace
}  // namespace safelight
