// Golden-file regression tests: tiny-scale fig7 and fig_detection CSV
// content is checked in under tests/golden/ and must regenerate
// byte-identically. The whole stack under the published numbers — synthetic
// data, training, conditioning, the packed GEMM, the prefix-activation
// cache, the thread-pool fan-out, detector scoring — is deterministic by
// contract; these tests turn that contract into a tripwire, so a kernel,
// cache or threading change can never silently shift the figures again.
//
// To regenerate after an *intentional* numbers change:
//   SAFELIGHT_UPDATE_GOLDEN=1 ctest -R Golden
// and commit the diff under tests/golden/ with the explanation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "core/detection.hpp"
#include "core/susceptibility.hpp"
#include "test_util.hpp"

#ifndef SAFELIGHT_GOLDEN_DIR
#error "SAFELIGHT_GOLDEN_DIR must point at tests/golden"
#endif

namespace safelight {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(SAFELIGHT_GOLDEN_DIR) + "/" + name;
}

/// Compares `content` against the checked-in golden file byte for byte.
/// With SAFELIGHT_UPDATE_GOLDEN=1 the file is (re)written instead — the
/// explicit opt-in for intentional numbers changes.
void expect_matches_golden(const std::string& content,
                           const std::string& name) {
  const std::string path = golden_path(name);
  if (env_int("SAFELIGHT_UPDATE_GOLDEN", 0) != 0) {
    std::filesystem::create_directories(SAFELIGHT_GOLDEN_DIR);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (generate with SAFELIGHT_UPDATE_GOLDEN=1)";
  const std::string golden((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  // EXPECT_EQ on the full strings would dump both files on mismatch; find
  // the first differing line for a readable failure instead.
  if (content == golden) return;
  std::istringstream got(content);
  std::istringstream want(golden);
  std::string got_line, want_line;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool has_got = static_cast<bool>(std::getline(got, got_line));
    const bool has_want = static_cast<bool>(std::getline(want, want_line));
    if (!has_got && !has_want) break;
    if (!has_got) got_line = "<eof>";
    if (!has_want) want_line = "<eof>";
    ASSERT_EQ(got_line, want_line)
        << name << " diverges at line " << line
        << " — if the change is intentional, regenerate with "
           "SAFELIGHT_UPDATE_GOLDEN=1 and commit the diff";
  }
  FAIL() << name << " differs from the regenerated content";
}

core::ExperimentSetup tiny_setup() {
  return core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
}

TEST(Golden, Fig7SusceptibilityCnn1Tiny) {
  TempDir dir("golden_fig7");
  const core::ExperimentSetup setup = tiny_setup();
  core::ModelZoo zoo(dir.path());
  core::SusceptibilityOptions options;
  options.seed_count = 2;
  const core::SusceptibilityReport report =
      core::run_susceptibility(setup, zoo, options);

  // Exactly the fig7_susceptibility.csv row format (bench/fig7).
  std::string csv = "model,vector,target,fraction,seed,accuracy,baseline\n";
  for (const auto& row : report.rows) {
    csv += nn::to_string(setup.model) + "," +
           attack::to_string(row.scenario.vector) + "," +
           attack::to_string(row.scenario.target) + "," +
           fmt_double(row.scenario.fraction, 2) + "," +
           std::to_string(row.scenario.seed) + "," +
           fmt_double(row.accuracy, 4) + "," +
           fmt_double(report.baseline_accuracy, 4) + "\n";
  }
  expect_matches_golden(csv, "fig7_cnn1_tiny.csv");
}

TEST(Golden, FigDetectionCnn1Tiny) {
  TempDir dir("golden_fig_detection");
  const core::ExperimentSetup setup = tiny_setup();
  core::ModelZoo zoo(dir.path());
  core::DetectionOptions options;
  options.seed_count = 1;
  options.clean_runs = 3;
  const core::DetectionReport report = core::run_detection_sweep(
      setup, zoo, core::variant_by_name("Original"), options);

  // Exactly the fig_detection.csv row format (bench/fig_detection).
  std::string csv =
      "model,run,clean,vector,target,fraction,seed,detector,score,flagged,"
      "probes,first_flag_probe\n";
  for (const auto& row : report.rows) {
    csv += nn::to_string(setup.model) + "," + row.run_id + "," +
           (row.clean ? "1" : "0") + "," +
           (row.clean ? "" : attack::to_string(row.scenario.vector)) + "," +
           (row.clean ? "" : attack::to_string(row.scenario.target)) + "," +
           (row.clean ? "0" : fmt_double(row.scenario.fraction, 2)) + "," +
           (row.clean ? "" : std::to_string(row.scenario.seed)) + "," +
           row.detector + "," + fmt_double(row.score, 6) + "," +
           (row.flagged ? "1" : "0") + "," + std::to_string(row.probes) +
           "," + std::to_string(row.first_flag_probe) + "\n";
  }
  // The ROC curves ride along in the same golden (fig_detection_roc.csv
  // format): they are a pure function of the scores, but pinning them
  // catches regressions in the curve/threshold assembly itself.
  csv += "model,detector,threshold,tpr,fpr\n";
  for (const std::string& detector : report.detectors) {
    const core::RocCurve curve = report.roc(detector);
    for (const auto& point : curve.points) {
      csv += nn::to_string(setup.model) + "," + detector + "," +
             fmt_double(point.threshold, 6) + "," +
             fmt_double(point.tpr, 4) + "," + fmt_double(point.fpr, 4) + "\n";
    }
  }
  expect_matches_golden(csv, "fig_detection_cnn1_tiny.csv");
}

}  // namespace
}  // namespace safelight
