// Tests for the HotSpot-like thermal substrate: grid, SOR solver,
// floorplans and heatmap rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>

#include "common/csv.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/heatmap.hpp"
#include "thermal/solver.hpp"

namespace safelight::thermal {
namespace {

GridConfig small_grid_config(std::size_t rows = 21, std::size_t cols = 21) {
  GridConfig config;
  config.rows = rows;
  config.cols = cols;
  return config;
}

// ---------------------------------------------------------------- grid

TEST(ThermalGrid, StartsAtAmbient) {
  ThermalGrid grid(small_grid_config(3, 4));
  EXPECT_EQ(grid.rows(), 3u);
  EXPECT_EQ(grid.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(grid.temperature_k(r, c), 300.0);
      EXPECT_DOUBLE_EQ(grid.delta_t(r, c), 0.0);
    }
  }
}

TEST(ThermalGrid, PowerAccumulates) {
  ThermalGrid grid(small_grid_config(2, 2));
  grid.add_power_mw(0, 1, 10.0);
  grid.add_power_mw(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(grid.power_mw(0, 1), 15.0);
  EXPECT_DOUBLE_EQ(grid.total_power_mw(), 15.0);
  grid.clear_power();
  EXPECT_DOUBLE_EQ(grid.total_power_mw(), 0.0);
}

TEST(ThermalGrid, BoundsChecked) {
  ThermalGrid grid(small_grid_config(2, 2));
  EXPECT_THROW(grid.add_power_mw(2, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(grid.temperature_k(0, 2), std::invalid_argument);
  EXPECT_THROW(grid.add_power_mw(0, 0, -1.0), std::invalid_argument);
}

TEST(ThermalGrid, ConfigValidation) {
  GridConfig config;
  EXPECT_THROW(ThermalGrid{config}, std::invalid_argument);  // 0x0
  config = small_grid_config();
  config.ambient_k = -1.0;
  EXPECT_THROW(ThermalGrid{config}, std::invalid_argument);
}

// ---------------------------------------------------------------- solver

TEST(Solver, NoPowerStaysAmbient) {
  ThermalGrid grid(small_grid_config());
  const SolveResult result = solve_steady_state(grid);
  EXPECT_TRUE(result.converged);
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      EXPECT_NEAR(grid.temperature_k(r, c), 300.0, 1e-6);
    }
  }
}

TEST(Solver, PointSourcePeaksAtSource) {
  ThermalGrid grid(small_grid_config());
  grid.add_power_mw(10, 10, 45.0);
  ASSERT_TRUE(solve_steady_state(grid).converged);
  const double peak = grid.delta_t(10, 10);
  EXPECT_GT(peak, 5.0);    // a hotspot, not a ripple
  EXPECT_LT(peak, 200.0);  // physically plausible rise
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      EXPECT_LE(grid.delta_t(r, c), peak + 1e-9);
      EXPECT_GE(grid.delta_t(r, c), -1e-9);  // no cooling below ambient
    }
  }
}

TEST(Solver, MonotoneDecayFromSource) {
  ThermalGrid grid(small_grid_config());
  grid.add_power_mw(10, 10, 45.0);
  ASSERT_TRUE(solve_steady_state(grid).converged);
  // Along the row through the source, temperature decays monotonically.
  for (std::size_t c = 10; c + 1 < grid.cols(); ++c) {
    EXPECT_GE(grid.temperature_k(10, c), grid.temperature_k(10, c + 1));
  }
  for (std::size_t c = 10; c > 0; --c) {
    EXPECT_GE(grid.temperature_k(10, c), grid.temperature_k(10, c - 1));
  }
}

TEST(Solver, SymmetricAroundCenteredSource) {
  ThermalGrid grid(small_grid_config());
  grid.add_power_mw(10, 10, 30.0);
  ASSERT_TRUE(solve_steady_state(grid).converged);
  for (std::size_t d = 1; d <= 10; ++d) {
    EXPECT_NEAR(grid.temperature_k(10, 10 + d), grid.temperature_k(10, 10 - d),
                1e-5);
    EXPECT_NEAR(grid.temperature_k(10 + d, 10), grid.temperature_k(10 - d, 10),
                1e-5);
  }
}

TEST(Solver, LinearInPower) {
  // The discretized system is linear: doubling power doubles delta-T.
  ThermalGrid a(small_grid_config());
  ThermalGrid b(small_grid_config());
  a.add_power_mw(5, 5, 20.0);
  b.add_power_mw(5, 5, 40.0);
  ASSERT_TRUE(solve_steady_state(a).converged);
  ASSERT_TRUE(solve_steady_state(b).converged);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(b.delta_t(r, c), 2.0 * a.delta_t(r, c), 1e-4);
    }
  }
}

TEST(Solver, SuperpositionOfSources) {
  ThermalGrid ab(small_grid_config());
  ab.add_power_mw(4, 4, 25.0);
  ab.add_power_mw(15, 15, 25.0);
  ThermalGrid a(small_grid_config());
  a.add_power_mw(4, 4, 25.0);
  ThermalGrid b(small_grid_config());
  b.add_power_mw(15, 15, 25.0);
  ASSERT_TRUE(solve_steady_state(ab).converged);
  ASSERT_TRUE(solve_steady_state(a).converged);
  ASSERT_TRUE(solve_steady_state(b).converged);
  for (std::size_t r = 0; r < ab.rows(); ++r) {
    for (std::size_t c = 0; c < ab.cols(); ++c) {
      EXPECT_NEAR(ab.delta_t(r, c), a.delta_t(r, c) + b.delta_t(r, c), 1e-4);
    }
  }
}

TEST(Solver, DecayLengthControlsSpread) {
  // Larger sink conductance -> shorter decay length -> tighter hotspot.
  SolverConfig tight;
  tight.g_sink_w_per_k = tight.g_lateral_w_per_k;  // L = 1 cell
  SolverConfig loose;
  loose.g_sink_w_per_k = tight.g_lateral_w_per_k / 16.0;  // L = 4 cells
  EXPECT_NEAR(tight.decay_length_cells(), 1.0, 1e-9);
  EXPECT_NEAR(loose.decay_length_cells(), 4.0, 1e-9);

  ThermalGrid a(small_grid_config());
  ThermalGrid b(small_grid_config());
  a.add_power_mw(10, 10, 30.0);
  b.add_power_mw(10, 10, 30.0);
  ASSERT_TRUE(solve_steady_state(a, tight).converged);
  ASSERT_TRUE(solve_steady_state(b, loose).converged);
  // Normalized neighbor-to-peak ratio is higher for the loose sink.
  const double ratio_a = a.delta_t(10, 14) / a.delta_t(10, 10);
  const double ratio_b = b.delta_t(10, 14) / b.delta_t(10, 10);
  EXPECT_GT(ratio_b, ratio_a);
}

TEST(Solver, ConfigValidation) {
  ThermalGrid grid(small_grid_config(4, 4));
  SolverConfig config;
  config.sor_omega = 2.5;
  EXPECT_THROW(solve_steady_state(grid, config), std::invalid_argument);
  config = SolverConfig{};
  config.g_lateral_w_per_k = 0.0;
  EXPECT_THROW(solve_steady_state(grid, config), std::invalid_argument);
}

TEST(Solver, ReportsIterationsAndResidual) {
  ThermalGrid grid(small_grid_config(8, 8));
  grid.add_power_mw(4, 4, 10.0);
  const SolveResult result = solve_steady_state(grid);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 1u);
  EXPECT_LT(result.residual_k, 1e-6);
}

TEST(Solver, HotspotMagnitudeInAttackRange) {
  // A 45 mW heater overdrive should produce a rise in the tens of Kelvin —
  // enough to shift a CONV-block MR by >= 1 channel (paper §III.B.2 needs
  // ~16.6 K per channel).
  ThermalGrid grid(small_grid_config());
  grid.add_power_mw(10, 10, 45.0);
  ASSERT_TRUE(solve_steady_state(grid).converged);
  EXPECT_GT(grid.delta_t(10, 10), 16.6);
  EXPECT_LT(grid.delta_t(10, 10), 120.0);
  // Direct neighbors are dragged along (cluster corruption).
  EXPECT_GT(grid.delta_t(10, 11), 3.0);
}

// ---------------------------------------------------------------- floorplan

TEST(Floorplan, NearSquareFactorizations) {
  EXPECT_EQ(near_square(100), (std::pair<std::size_t, std::size_t>{10, 10}));
  EXPECT_EQ(near_square(20), (std::pair<std::size_t, std::size_t>{4, 5}));
  EXPECT_EQ(near_square(60), (std::pair<std::size_t, std::size_t>{6, 10}));
  EXPECT_EQ(near_square(150), (std::pair<std::size_t, std::size_t>{10, 15}));
  EXPECT_EQ(near_square(1), (std::pair<std::size_t, std::size_t>{1, 1}));
  // Primes fall back to a ceil grid that still fits everything.
  const auto [r, c] = near_square(17);
  EXPECT_GE(r * c, 17u);
}

TEST(Floorplan, ConvBlockDimensions) {
  const BlockFloorplan plan(100, 20);
  EXPECT_EQ(plan.grid_rows(), 40u);  // 10 unit rows x 4 bank rows
  EXPECT_EQ(plan.grid_cols(), 50u);  // 10 unit cols x 5 bank cols
}

TEST(Floorplan, BankCellRoundTrip) {
  const BlockFloorplan plan(100, 20);
  for (std::size_t unit : {0u, 7u, 55u, 99u}) {
    for (std::size_t bank : {0u, 3u, 19u}) {
      const auto [row, col] = plan.bank_cell(unit, bank);
      EXPECT_LT(row, plan.grid_rows());
      EXPECT_LT(col, plan.grid_cols());
      const auto [u, b] = plan.cell_bank(row, col);
      EXPECT_EQ(u, unit);
      EXPECT_EQ(b, bank);
    }
  }
}

TEST(Floorplan, DistinctBanksDistinctCells) {
  const BlockFloorplan plan(4, 6);
  std::set<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t b = 0; b < 6; ++b) {
      cells.insert(plan.bank_cell(u, b));
    }
  }
  EXPECT_EQ(cells.size(), 24u);
}

TEST(Floorplan, MakeGridMatchesDims) {
  const BlockFloorplan plan(60, 150);
  const ThermalGrid grid = plan.make_grid();
  EXPECT_EQ(grid.rows(), plan.grid_rows());
  EXPECT_EQ(grid.cols(), plan.grid_cols());
}

TEST(Floorplan, BoundsChecked) {
  const BlockFloorplan plan(4, 6);
  EXPECT_THROW(plan.bank_cell(4, 0), std::invalid_argument);
  EXPECT_THROW(plan.bank_cell(0, 6), std::invalid_argument);
  EXPECT_THROW(BlockFloorplan(0, 5), std::invalid_argument);
}

// ---------------------------------------------------------------- heatmap

TEST(Heatmap, AsciiRendersEveryCell) {
  ThermalGrid grid(small_grid_config(5, 7));
  grid.add_power_mw(2, 3, 30.0);
  solve_steady_state(grid);
  const std::string art = render_ascii_heatmap(grid);
  // 5 rows of 7 glyphs + newlines + legend line.
  std::size_t newlines = 0;
  for (char ch : art) {
    if (ch == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 6u);
  EXPECT_NE(art.find('@'), std::string::npos);  // peak glyph present
  EXPECT_NE(art.find("scale:"), std::string::npos);
}

TEST(Heatmap, CsvRoundTrip) {
  const std::string path = "/tmp/safelight_heatmap_test.csv";
  ThermalGrid grid(small_grid_config(4, 4));
  grid.add_power_mw(1, 1, 10.0);
  solve_steady_state(grid);
  write_heatmap_csv(grid, path);
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.header.size(), 4u);
  ASSERT_EQ(table.rows.size(), 4u);
  EXPECT_NEAR(std::stod(table.rows[1][1]), grid.temperature_k(1, 1), 1e-3);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace safelight::thermal
