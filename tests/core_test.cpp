// Tests for the SafeLight core: experiment scaling, variants, zoo,
// evaluation cache, mitigation-report selection and report rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/evaluation.hpp"
#include "core/mitigation.hpp"
#include "core/report.hpp"
#include "core/zoo.hpp"
#include "nn/serialize.hpp"
#include "test_util.hpp"

namespace safelight::core {
namespace {

// ---------------------------------------------------------------- scaling

TEST(ExperimentScale, Cnn1KeepsFullCrosslightBlocks) {
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kDefault);
  // CNN_1 fits in one pass at paper scale; the blocks stay full size.
  EXPECT_EQ(setup.accelerator.conv.units, 99u);  // ~100, rounded from target
  EXPECT_EQ(setup.accelerator.fc.units, 60u);
  EXPECT_EQ(setup.dataset_family, "digits");
}

TEST(ExperimentScale, PassPressurePreserved) {
  // The reduced models must see the paper's multi-pass mapping pressure.
  struct Expectation {
    nn::ModelId id;
    double conv_passes_target;
    double fc_passes_target;
  };
  const Expectation expectations[] = {
      {nn::ModelId::kResNet18, 117.5, 0.0038},
      {nn::ModelId::kVgg16v, 97.5, 88.6},
  };
  for (const auto& e : expectations) {
    const ExperimentSetup setup = experiment_setup(e.id, Scale::kDefault);
    auto model = nn::make_model(e.id, setup.model_config);
    accel::WeightStationaryMapping mapping(*model, setup.accelerator);
    const double conv_passes =
        static_cast<double>(mapping.passes(accel::BlockKind::kConv));
    EXPECT_NEAR(conv_passes, e.conv_passes_target,
                e.conv_passes_target * 0.35)
        << nn::to_string(e.id);
    if (e.fc_passes_target > 1.0) {
      const double fc_passes =
          static_cast<double>(mapping.passes(accel::BlockKind::kFc));
      EXPECT_NEAR(fc_passes, e.fc_passes_target, e.fc_passes_target * 0.35)
          << nn::to_string(e.id);
    }
  }
}

TEST(ExperimentScale, AcceleratorForRejectsEmptyModel) {
  EXPECT_THROW(accelerator_for(nn::ModelId::kCnn1, 0, 0),
               std::invalid_argument);
}

TEST(ExperimentScale, BankWidthsNeverShrink) {
  for (nn::ModelId id :
       {nn::ModelId::kCnn1, nn::ModelId::kResNet18, nn::ModelId::kVgg16v}) {
    for (Scale scale : {Scale::kTiny, Scale::kDefault}) {
      const ExperimentSetup setup = experiment_setup(id, scale);
      EXPECT_EQ(setup.accelerator.conv.mrs_per_bank, 20u);
      EXPECT_EQ(setup.accelerator.fc.mrs_per_bank, 150u);
    }
  }
}

TEST(ExperimentScale, TagEncodesModelAndScale) {
  EXPECT_EQ(experiment_setup(nn::ModelId::kCnn1, Scale::kTiny).tag(),
            "cnn1_tiny");
  EXPECT_EQ(experiment_setup(nn::ModelId::kVgg16v, Scale::kDefault).tag(),
            "vgg16v_default");
}

TEST(ExperimentScale, DatasetsMatchModelShapes) {
  for (nn::ModelId id :
       {nn::ModelId::kCnn1, nn::ModelId::kResNet18, nn::ModelId::kVgg16v}) {
    const ExperimentSetup setup = experiment_setup(id, Scale::kTiny);
    const nn::Dataset train = make_train_data(setup);
    const nn::Dataset test = make_test_data(setup);
    auto model = nn::make_model(id, setup.model_config);
    EXPECT_EQ(train.sample_shape()[0], setup.model_config.in_channels);
    EXPECT_EQ(train.sample_shape()[1], setup.model_config.image_size);
    // Disjoint seeds for train/test.
    EXPECT_NE(setup.train_data.seed, setup.test_data.seed);
    // The model accepts the data.
    auto [images, labels] = test.batch(0, 2);
    EXPECT_EQ(model->forward(images, false).dim(1), 10u);
  }
}

// ---------------------------------------------------------------- variants

TEST(Variants, PaperListHasElevenEntries) {
  const auto variants = paper_variants();
  ASSERT_EQ(variants.size(), 11u);
  EXPECT_EQ(variants[0].name, "Original");
  EXPECT_EQ(variants[1].name, "L2_reg");
  EXPECT_EQ(variants[2].name, "l2+n1");
  EXPECT_EQ(variants[10].name, "l2+n9");
}

TEST(Variants, SigmaLadderMatchesPaper) {
  const auto variants = paper_variants();
  for (int i = 1; i <= 9; ++i) {
    const auto& v = variants[static_cast<std::size_t>(i + 1)];
    EXPECT_NEAR(v.noise_sigma, 0.1 * i, 1e-6);
    EXPECT_GT(v.weight_decay, 0.0f);  // all noise variants include L2
  }
  EXPECT_EQ(variants[0].noise_sigma, 0.0f);
  EXPECT_EQ(variants[0].weight_decay, 0.0f);
  EXPECT_EQ(variants[1].noise_sigma, 0.0f);
}

TEST(Variants, LookupByName) {
  EXPECT_FLOAT_EQ(variant_by_name("l2+n5").noise_sigma, 0.5f);
  EXPECT_TRUE(variant_by_name("Original").is_original());
  EXPECT_THROW(variant_by_name("l2+n10"), std::invalid_argument);
}

TEST(Variants, ApplyVariantSetsTrainingKnobs) {
  nn::TrainConfig base;
  base.epochs = 7;
  const nn::TrainConfig config =
      apply_variant(base, variant_by_name("l2+n3"));
  EXPECT_EQ(config.epochs, 7u);
  EXPECT_GT(config.weight_decay, 0.0f);
  EXPECT_FLOAT_EQ(config.noise.sigma, 0.3f);
  EXPECT_EQ(config.noise.mode, nn::NoiseMode::kRelativeToStd);
}

// ---------------------------------------------------------------- zoo

TEST(Zoo, TrainsOnceThenLoads) {
  TempDir dir("zoo");
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  ModelZoo zoo(dir.path());
  const VariantSpec variant = variant_by_name("Original");
  EXPECT_FALSE(zoo.has_entry(setup, variant));
  auto first = zoo.get_or_train(setup, variant);
  EXPECT_TRUE(zoo.has_entry(setup, variant));
  auto second = zoo.get_or_train(setup, variant);
  // Loaded weights identical to trained weights.
  const auto a = nn::snapshot_state(*first);
  const auto b = nn::snapshot_state(*second);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(nn::max_abs_diff(a[i], b[i]), 0.0f);
  }
}

TEST(Zoo, CorruptEntryTriggersRetrain) {
  TempDir dir("zoo_corrupt");
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  ModelZoo zoo(dir.path());
  const VariantSpec variant = variant_by_name("Original");
  zoo.get_or_train(setup, variant);
  // Truncate the cache file.
  const std::string path = zoo.entry_path(setup, variant);
  std::filesystem::resize_file(path, 64);
  EXPECT_FALSE(zoo.has_entry(setup, variant));
  EXPECT_NO_THROW(zoo.get_or_train(setup, variant));
  EXPECT_TRUE(zoo.has_entry(setup, variant));
}

TEST(Zoo, VariantsCachedSeparately) {
  TempDir dir("zoo_variants");
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  ModelZoo zoo(dir.path());
  zoo.get_or_train(setup, variant_by_name("Original"));
  EXPECT_FALSE(zoo.has_entry(setup, variant_by_name("L2_reg")));
  EXPECT_NE(zoo.entry_path(setup, variant_by_name("Original")),
            zoo.entry_path(setup, variant_by_name("L2_reg")));
}

// ---------------------------------------------------------------- evaluator

TEST(Evaluator, BaselineStableAndScenarioDegrades) {
  TempDir dir("eval");
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  ModelZoo zoo(dir.path());
  auto model = zoo.get_or_train(setup, variant_by_name("Original"));
  AttackEvaluator evaluator(setup, *model, "Original", "");

  const double baseline = evaluator.baseline_accuracy();
  EXPECT_GT(baseline, 0.3);  // tiny model has learned something

  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kHotspot;
  scenario.target = attack::AttackTarget::kBothBlocks;
  scenario.fraction = 0.10;
  scenario.seed = 5;
  const double attacked = evaluator.evaluate_scenario(scenario);
  EXPECT_LT(attacked, baseline + 1e-9);
  EXPECT_GT(evaluator.last_stats().corrupted_weights, 0u);

  // Model restored after evaluation: baseline unchanged.
  EXPECT_NEAR(evaluator.baseline_accuracy(), baseline, 1e-12);
}

TEST(Evaluator, CachePersistsAcrossInstances) {
  TempDir dir("eval_cache");
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  ModelZoo zoo(dir.path());
  auto model = zoo.get_or_train(setup, variant_by_name("Original"));

  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kConvBlock;
  scenario.fraction = 0.05;
  scenario.seed = 2;

  double first_result = 0.0;
  {
    AttackEvaluator evaluator(setup, *model, "Original", dir.path());
    first_result = evaluator.evaluate_scenario(scenario);
  }
  // Second evaluator on a freshly loaded model reads the cached value.
  auto model2 = zoo.get_or_train(setup, variant_by_name("Original"));
  AttackEvaluator evaluator2(setup, *model2, "Original", dir.path());
  EXPECT_DOUBLE_EQ(evaluator2.evaluate_scenario(scenario), first_result);
  // The second call computed nothing: stats stay default.
  EXPECT_EQ(evaluator2.last_stats().corrupted_weights, 0u);
}

TEST(Evaluator, ChecksumChangesWithWeights) {
  const ExperimentSetup setup =
      experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  auto a = nn::make_model(setup.model, setup.model_config);
  const std::string checksum_a = weights_checksum(*a);
  EXPECT_EQ(checksum_a.size(), 16u);
  a->params()[0]->value[0] += 1.0f;
  EXPECT_NE(weights_checksum(*a), checksum_a);
}

// ------------------------------------------------------------- mitigation

/// Builds a VariantOutcome with the distribution knobs best_robust ranks on.
VariantOutcome outcome_of(const std::string& name, double median,
                          double min) {
  VariantOutcome outcome;
  outcome.variant.name = name;
  outcome.under_attack.n = 3;
  outcome.under_attack.median = median;
  outcome.under_attack.min = min;
  return outcome;
}

TEST(Mitigation, BestRobustPrefersHigherMedian) {
  MitigationReport report;
  report.outcomes.push_back(outcome_of("Original", 0.99, 0.99));
  report.outcomes.push_back(outcome_of("l2+n1", 0.70, 0.10));
  report.outcomes.push_back(outcome_of("l2+n2", 0.80, 0.05));
  EXPECT_EQ(report.best_robust().variant.name, "l2+n2");
}

TEST(Mitigation, BestRobustBreaksMedianTiesByWorstCase) {
  MitigationReport report;
  report.outcomes.push_back(outcome_of("l2+n1", 0.80, 0.10));
  report.outcomes.push_back(outcome_of("l2+n2", 0.80, 0.30));
  report.outcomes.push_back(outcome_of("l2+n3", 0.80, 0.20));
  EXPECT_EQ(report.best_robust().variant.name, "l2+n2");
}

TEST(Mitigation, BestRobustBreaksFullTiesByName) {
  // Identical distributions: the lexicographically smallest name wins,
  // independent of sweep order.
  MitigationReport forward;
  forward.outcomes.push_back(outcome_of("l2+n1", 0.80, 0.20));
  forward.outcomes.push_back(outcome_of("l2+n2", 0.80, 0.20));
  EXPECT_EQ(forward.best_robust().variant.name, "l2+n1");

  MitigationReport reversed;
  reversed.outcomes.push_back(outcome_of("l2+n2", 0.80, 0.20));
  reversed.outcomes.push_back(outcome_of("l2+n1", 0.80, 0.20));
  EXPECT_EQ(reversed.best_robust().variant.name, "l2+n1");
}

TEST(Mitigation, BestRobustIgnoresOriginalAndRejectsEmpty) {
  MitigationReport original_only;
  original_only.outcomes.push_back(outcome_of("Original", 0.99, 0.99));
  EXPECT_THROW(original_only.best_robust(), std::invalid_argument);

  MitigationReport empty;
  EXPECT_THROW(empty.best_robust(), std::invalid_argument);
}

TEST(Mitigation, OutcomeLookupByNameThrowsOnUnknown) {
  MitigationReport report;
  report.outcomes.push_back(outcome_of("L2_reg", 0.85, 0.40));
  EXPECT_EQ(report.outcome("L2_reg").under_attack.min, 0.40);
  EXPECT_THROW(report.outcome("l2+n9"), std::invalid_argument);
  EXPECT_THROW(report.outcome(""), std::invalid_argument);
}

// ---------------------------------------------------------------- report

TEST(Report, TableAlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Report, TableRejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"one", "two", "three"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({}), std::invalid_argument);
  EXPECT_EQ(table.row_count(), 0u);  // rejected rows are not kept
}

TEST(Report, TableRendersHeaderOnlyWithZeroRows) {
  TextTable table({"alpha", "beta"});
  const std::string out = table.render();
  EXPECT_EQ(table.row_count(), 0u);
  // Header line + underline, nothing else.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Report, TableAutoSizesToWideCells) {
  TextTable table({"k", "v"});
  const std::string wide(40, 'x');
  table.add_row({wide, "1"});
  table.add_row({"s", "2"});
  const std::string out = table.render();

  // Every line is padded to the widest cell: the header line, the
  // underline and both rows all span the 40-char column.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_GE(lines[1].size(), wide.size());  // underline spans the column
  EXPECT_NE(lines[2].find(wide), std::string::npos);
  // The short row is padded out to the same column width.
  EXPECT_EQ(lines[3].find('2'), lines[2].find('1'));
}

TEST(Report, PercentFormatting) {
  EXPECT_EQ(pct(0.05), "5.0%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(signed_pct(0.0321), "+3.21%");
  EXPECT_EQ(signed_pct(-0.004), "-0.40%");
}

}  // namespace
}  // namespace safelight::core
