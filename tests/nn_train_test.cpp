// Tests for loss, optimizer, noise injection, datasets, synthetic data,
// serialization and the training loop.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dataset.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/noise.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/synthetic.hpp"
#include "nn/trainer.hpp"

namespace safelight::nn {
namespace {

// ---------------------------------------------------------------- loss

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});  // zeros -> uniform distribution
  const LossResult r = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  const LossResult r = cross_entropy(logits, {0});
  EXPECT_LT(r.loss, 1e-6);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Tensor logits({3, 5});
  Rng rng(5);
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    logits[i] = static_cast<float>(rng.uniform(-2, 2));
  }
  const LossResult r = cross_entropy(logits, {1, 4, 0});
  for (std::size_t n = 0; n < 3; ++n) {
    double sum = 0;
    for (std::size_t c = 0; c < 5; ++c) sum += r.grad[n * 5 + c];
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Tensor logits({2, 3}, {0.5f, -1.0f, 2.0f, 1.0f, 1.0f, 0.0f});
  const std::vector<int> labels = {2, 0};
  const LossResult r = cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (cross_entropy(up, labels).loss -
                            cross_entropy(down, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-3);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {-1}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(CrossEntropy, StableForExtremeLogits) {
  Tensor logits({1, 2}, {500.0f, -500.0f});
  const LossResult r = cross_entropy(logits, {1});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_TRUE(r.grad.all_finite());
}

// ---------------------------------------------------------------- optimizer

TEST(Sgd, MinimizesQuadratic) {
  // One parameter, loss = 0.5 * w^2 -> grad = w; SGD should drive w to 0.
  Param w("w", ParamKind::kLinearWeight, Tensor({1}, {4.0f}));
  Sgd opt({&w}, SgdConfig{0.1f, 0.0f, 0.0f});
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = w.value[0];
    opt.step();
    opt.zero_grad();
  }
  EXPECT_NEAR(w.value[0], 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAccelerates) {
  Param a("a", ParamKind::kLinearWeight, Tensor({1}, {1.0f}));
  Param b("b", ParamKind::kLinearWeight, Tensor({1}, {1.0f}));
  Sgd plain({&a}, SgdConfig{0.01f, 0.0f, 0.0f});
  Sgd momentum({&b}, SgdConfig{0.01f, 0.9f, 0.0f});
  for (int i = 0; i < 20; ++i) {
    a.grad[0] = a.value[0];
    b.grad[0] = b.value[0];
    plain.step();
    momentum.step();
    plain.zero_grad();
    momentum.zero_grad();
  }
  EXPECT_LT(std::abs(b.value[0]), std::abs(a.value[0]));
}

TEST(Sgd, WeightDecayShrinksMappedWeights) {
  Param w("w", ParamKind::kConvWeight, Tensor({1}, {2.0f}));
  Sgd opt({&w}, SgdConfig{0.1f, 0.0f, 0.5f});
  opt.step();  // zero gradient; only decay acts
  EXPECT_LT(w.value[0], 2.0f);
}

TEST(Sgd, WeightDecaySparesElectronicParams) {
  Param bias("b", ParamKind::kElectronic, Tensor({1}, {2.0f}));
  Sgd opt({&bias}, SgdConfig{0.1f, 0.0f, 0.5f});
  opt.step();
  EXPECT_FLOAT_EQ(bias.value[0], 2.0f);
}

TEST(Sgd, RejectsBadConfig) {
  Param w("w", ParamKind::kLinearWeight, Tensor({1}));
  EXPECT_THROW(Sgd({&w}, SgdConfig{0.0f, 0.9f, 0.0f}),
               std::invalid_argument);
  EXPECT_THROW(Sgd({&w}, SgdConfig{0.1f, 1.0f, 0.0f}),
               std::invalid_argument);
  EXPECT_THROW(Sgd({&w}, SgdConfig{0.1f, 0.5f, -0.1f}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- noise

TEST(NoiseInjector, DisabledIsNoop) {
  Param w("w", ParamKind::kConvWeight, Tensor({4}, {1, 2, 3, 4}));
  NoiseInjector injector(NoiseConfig{}, 3);
  injector.perturb({&w});
  EXPECT_FLOAT_EQ(w.value[0], 1.0f);
  injector.restore({&w});
  EXPECT_FLOAT_EQ(w.value[3], 4.0f);
}

TEST(NoiseInjector, PerturbThenRestoreRoundTrips) {
  Param w("w", ParamKind::kConvWeight, Tensor({100}));
  Rng rng(4);
  for (std::size_t i = 0; i < 100; ++i) {
    w.value[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const Tensor original = w.value;
  NoiseInjector injector(NoiseConfig{0.5f}, 3);
  injector.perturb({&w});
  EXPECT_GT(max_abs_diff(original, w.value), 0.0f);
  injector.restore({&w});
  EXPECT_FLOAT_EQ(max_abs_diff(original, w.value), 0.0f);
}

TEST(NoiseInjector, ElectronicParamsSparedByDefault) {
  Param bias("b", ParamKind::kElectronic, Tensor({10}, std::vector<float>(10, 1.0f)));
  NoiseInjector injector(NoiseConfig{0.9f}, 3);
  injector.perturb({&bias});
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(bias.value[i], 1.0f);
  injector.restore({&bias});
}

TEST(NoiseInjector, RelativeToStdScalesWithSigma) {
  auto measure = [](float sigma) {
    Param w("w", ParamKind::kConvWeight, Tensor({2000}));
    Rng rng(9);
    for (std::size_t i = 0; i < w.value.numel(); ++i) {
      w.value[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    const Tensor original = w.value;
    NoiseInjector injector(NoiseConfig{sigma, NoiseMode::kRelativeToStd}, 7);
    injector.perturb({&w});
    double sq = 0;
    for (std::size_t i = 0; i < w.value.numel(); ++i) {
      const double d = w.value[i] - original[i];
      sq += d * d;
    }
    return std::sqrt(sq / static_cast<double>(w.value.numel()));
  };
  // Weight std ~1 -> noise std ~sigma.
  EXPECT_NEAR(measure(0.2f), 0.2, 0.05);
  EXPECT_NEAR(measure(0.8f), 0.8, 0.15);
}

TEST(NoiseInjector, AbsoluteModeIgnoresWeightScale) {
  Param w("w", ParamKind::kConvWeight, Tensor({2000}));  // all zeros
  NoiseInjector injector(NoiseConfig{0.3f, NoiseMode::kAbsolute}, 7);
  injector.perturb({&w});
  double sq = 0;
  for (std::size_t i = 0; i < w.value.numel(); ++i) {
    sq += static_cast<double>(w.value[i]) * w.value[i];
  }
  EXPECT_NEAR(std::sqrt(sq / 2000.0), 0.3, 0.06);
  injector.restore({&w});
}

TEST(NoiseInjector, ProportionalModeLeavesZerosAlone) {
  Param w("w", ParamKind::kConvWeight, Tensor({4}, {0.0f, 1.0f, 0.0f, -1.0f}));
  NoiseInjector injector(NoiseConfig{0.5f, NoiseMode::kProportional}, 7);
  injector.perturb({&w});
  EXPECT_FLOAT_EQ(w.value[0], 0.0f);
  EXPECT_FLOAT_EQ(w.value[2], 0.0f);
  injector.restore({&w});
}

TEST(NoiseInjector, DoublePerturbIsInvariantViolation) {
  Param w("w", ParamKind::kConvWeight, Tensor({4}, {1, 1, 1, 1}));
  NoiseInjector injector(NoiseConfig{0.5f}, 3);
  injector.perturb({&w});
  EXPECT_THROW(injector.perturb({&w}), std::logic_error);
}

// ---------------------------------------------------------------- dataset

Dataset tiny_dataset() {
  Dataset d;
  d.name = "tiny";
  d.num_classes = 2;
  d.images = Tensor({4, 1, 2, 2});
  for (std::size_t i = 0; i < d.images.numel(); ++i) {
    d.images[i] = static_cast<float>(i);
  }
  d.labels = {0, 1, 0, 1};
  return d;
}

TEST(Dataset, BatchSlices) {
  const Dataset d = tiny_dataset();
  auto [images, labels] = d.batch(1, 3);
  EXPECT_EQ(images.dim(0), 2u);
  EXPECT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_FLOAT_EQ(images[0], 4.0f);  // sample 1 starts at flat index 4
}

TEST(Dataset, GatherArbitraryIndices) {
  const Dataset d = tiny_dataset();
  auto [images, labels] = d.gather({3, 0});
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 0);
  EXPECT_FLOAT_EQ(images[0], 12.0f);
}

TEST(Dataset, TakeClampsAndPreservesMeta) {
  const Dataset d = tiny_dataset();
  const Dataset t = d.take(10);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.num_classes, 2u);
  const Dataset t2 = d.take(2);
  EXPECT_EQ(t2.size(), 2u);
}

TEST(Dataset, ValidateCatchesBadLabels) {
  Dataset d = tiny_dataset();
  d.labels[2] = 7;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, BatchRangeChecks) {
  const Dataset d = tiny_dataset();
  EXPECT_THROW(d.batch(2, 2), std::invalid_argument);
  EXPECT_THROW(d.batch(0, 5), std::invalid_argument);
  EXPECT_THROW(d.gather({4}), std::invalid_argument);
}

TEST(BatchIterator, CoversEpochExactlyOnce) {
  const Dataset d = tiny_dataset();
  Rng rng(8);
  BatchIterator it(d, 3, rng, /*shuffle=*/true);
  Tensor images;
  std::vector<int> labels;
  std::size_t total = 0;
  while (it.next(images, labels)) total += labels.size();
  EXPECT_EQ(total, 4u);
  EXPECT_FALSE(it.next(images, labels));
}

TEST(BatchIterator, UnshuffledPreservesOrder) {
  const Dataset d = tiny_dataset();
  Rng rng(8);
  BatchIterator it(d, 2, rng, /*shuffle=*/false);
  Tensor images;
  std::vector<int> labels;
  ASSERT_TRUE(it.next(images, labels));
  EXPECT_EQ(labels, (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------- synthetic

class SyntheticFamilyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SyntheticFamilyTest, ShapesAndDeterminism) {
  SynthConfig config;
  config.count = 40;
  config.seed = 5;
  const Dataset a = make_synthetic(GetParam(), config);
  const Dataset b = make_synthetic(GetParam(), config);
  a.validate();
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(a.num_classes, 10u);
  EXPECT_FLOAT_EQ(max_abs_diff(a.images, b.images), 0.0f);
  EXPECT_EQ(a.labels, b.labels);
}

TEST_P(SyntheticFamilyTest, SeedChangesData) {
  SynthConfig a_config, b_config;
  a_config.count = b_config.count = 20;
  a_config.seed = 1;
  b_config.seed = 2;
  const Dataset a = make_synthetic(GetParam(), a_config);
  const Dataset b = make_synthetic(GetParam(), b_config);
  EXPECT_GT(max_abs_diff(a.images, b.images), 0.0f);
}

TEST_P(SyntheticFamilyTest, ClassBalanced) {
  SynthConfig config;
  config.count = 50;
  const Dataset d = make_synthetic(GetParam(), config);
  std::vector<int> counts(10, 0);
  for (int label : d.labels) counts[static_cast<std::size_t>(label)]++;
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST_P(SyntheticFamilyTest, PixelsBounded) {
  SynthConfig config;
  config.count = 20;
  const Dataset d = make_synthetic(GetParam(), config);
  EXPECT_GE(d.images.min(), -0.5f);
  EXPECT_LE(d.images.max(), 0.5f);
}

INSTANTIATE_TEST_SUITE_P(Families, SyntheticFamilyTest,
                         ::testing::Values("digits", "shapes", "textures"));

TEST(Synthetic, UnknownFamilyThrows) {
  EXPECT_THROW(make_synthetic("nope", SynthConfig{}), std::invalid_argument);
}

TEST(Synthetic, CustomImageSize) {
  SynthConfig config;
  config.count = 10;
  config.image_size = 20;
  EXPECT_EQ(synth_digits(config).images.dim(2), 20u);
  EXPECT_EQ(synth_shapes(config).images.dim(3), 20u);
}

TEST(Synthetic, RejectsTinyImages) {
  SynthConfig config;
  config.count = 10;
  config.image_size = 4;
  EXPECT_THROW(synth_digits(config), std::invalid_argument);
}

// ---------------------------------------------------------------- serialize

Sequential make_small_model(std::uint64_t seed) {
  Rng rng(seed);
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(2);
  model.emplace<ReLU>();
  model.emplace<Flatten>();
  model.emplace<Linear>(2 * 4 * 4, 3, rng);
  return model;
}

TEST(Serialize, SaveLoadRoundTrip) {
  const std::string path = "/tmp/safelight_model_test.slw";
  Sequential a = make_small_model(1);
  // Touch BN running stats so state tensors are non-trivial.
  Rng rng(2);
  Tensor x({4, 1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  a.forward(x, true);
  save_model(a, path);

  Sequential b = make_small_model(99);  // different init
  load_model(b, path);
  const Tensor out_a = a.forward(x, false);
  const Tensor out_b = b.forward(x, false);
  EXPECT_FLOAT_EQ(max_abs_diff(out_a, out_b), 0.0f);
  std::filesystem::remove(path);
}

TEST(Serialize, ChecksumDetectsCorruption) {
  const std::string path = "/tmp/safelight_model_corrupt.slw";
  Sequential a = make_small_model(1);
  save_model(a, path);
  // Flip one byte in the middle of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    char byte;
    f.seekg(100);
    f.read(&byte, 1);
    byte ^= 0x40;
    f.seekp(100);
    f.write(&byte, 1);
  }
  Sequential b = make_small_model(2);
  EXPECT_THROW(load_model(b, path), std::runtime_error);
  EXPECT_FALSE(model_file_matches(b, path));
  std::filesystem::remove(path);
}

TEST(Serialize, ArchitectureMismatchRejected) {
  const std::string path = "/tmp/safelight_model_arch.slw";
  Sequential a = make_small_model(1);
  save_model(a, path);
  Rng rng(3);
  Sequential different;
  different.emplace<Linear>(4, 2, rng);
  EXPECT_THROW(load_model(different, path), std::runtime_error);
  EXPECT_FALSE(model_file_matches(different, path));
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFile) {
  Sequential a = make_small_model(1);
  EXPECT_THROW(load_model(a, "/tmp/safelight_no_such_file.slw"),
               std::runtime_error);
  EXPECT_FALSE(model_file_matches(a, "/tmp/safelight_no_such_file.slw"));
}

TEST(Serialize, SnapshotRestoreRoundTrip) {
  Sequential a = make_small_model(1);
  const auto snapshot = snapshot_state(a);
  const Tensor x({1, 1, 4, 4});
  const Tensor before = a.forward(x, false);
  for (Param* p : a.params()) p->value.fill(0.1f);
  restore_state(a, snapshot);
  const Tensor after = a.forward(x, false);
  EXPECT_FLOAT_EQ(max_abs_diff(before, after), 0.0f);
}

TEST(Serialize, RestoreRejectsWrongSnapshot) {
  Sequential a = make_small_model(1);
  Rng rng(5);
  Sequential b;
  b.emplace<Linear>(2, 2, rng);
  const auto snapshot = snapshot_state(b);
  EXPECT_THROW(restore_state(a, snapshot), std::invalid_argument);
}

// ---------------------------------------------------------------- trainer

TEST(Trainer, LearnsLinearlySeparableData) {
  // Two-class 2D blobs -> a linear model must reach high accuracy.
  Dataset train;
  train.name = "blobs";
  train.num_classes = 2;
  const std::size_t n = 120;
  train.images = Tensor({n, 1, 1, 2});
  train.labels.resize(n);
  Rng rng(17);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 0 ? -0.5 : 0.5;
    train.images[i * 2 + 0] = static_cast<float>(cx + rng.gaussian(0, 0.2));
    train.images[i * 2 + 1] = static_cast<float>(rng.gaussian(0, 0.2));
    train.labels[i] = label;
  }

  Sequential model;
  Rng mrng(3);
  model.emplace<Flatten>();
  model.emplace<Linear>(2, 2, mrng);

  TrainConfig config;
  config.epochs = 20;
  config.batch_size = 16;
  config.lr = 0.5f;
  const TrainHistory history = train_model(model, train, train, config);
  EXPECT_GT(history.final_test_acc, 0.95);
  // Loss decreased over training.
  EXPECT_LT(history.train_loss.back(), history.train_loss.front());
}

TEST(Trainer, L2DecayKeepsWeightsSmaller) {
  SynthConfig data_config;
  data_config.count = 60;
  data_config.image_size = 12;
  const Dataset train = synth_digits(data_config);

  auto train_with = [&](float decay) {
    Rng rng(4);
    Sequential model;
    model.emplace<Flatten>();
    model.emplace<Linear>(144, 10, rng);
    TrainConfig config;
    config.epochs = 8;
    config.weight_decay = decay;
    config.lr = 0.1f;
    train_model(model, train, Dataset{train}, config);
    double sq = 0;
    for (Param* p : model.params()) {
      if (p->kind != ParamKind::kElectronic) sq += p->value.sum_squares();
    }
    return sq;
  };
  EXPECT_LT(train_with(0.01f), train_with(0.0f));
}

TEST(Trainer, NoiseAwareTrainingStillLearns) {
  SynthConfig data_config;
  data_config.count = 150;
  data_config.image_size = 12;
  const Dataset train = synth_digits(data_config);

  Rng rng(4);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Linear>(144, 10, rng);
  TrainConfig config;
  config.epochs = 16;
  config.lr = 0.1f;
  config.noise.sigma = 0.3f;
  const TrainHistory history =
      train_model(model, train, Dataset{train}, config);
  // Noise-aware training converges slower but must still clearly beat the
  // 10% random-guess floor on the training distribution.
  EXPECT_GT(history.final_test_acc, 0.55);
}

TEST(Trainer, DeterministicGivenSeed) {
  SynthConfig data_config;
  data_config.count = 40;
  data_config.image_size = 12;
  const Dataset train = synth_digits(data_config);

  auto run = [&]() {
    Rng rng(4);
    Sequential model;
    model.emplace<Flatten>();
    model.emplace<Linear>(144, 10, rng);
    TrainConfig config;
    config.epochs = 2;
    config.seed = 31;
    train_model(model, train, Dataset{train}, config);
    return snapshot_state(model);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(max_abs_diff(a[i], b[i]), 0.0f);
  }
}

TEST(Trainer, EvaluateMatchesManualCount) {
  Dataset d;
  d.num_classes = 2;
  d.images = Tensor({2, 1, 1, 2}, {1, 0, 0, 1});
  d.labels = {0, 1};
  Sequential model;
  Rng rng(3);
  auto& fc = model.emplace<Flatten>();
  (void)fc;
  auto& lin = model.emplace<Linear>(2, 2, rng);
  lin.weight().value = Tensor({2, 2}, {1, 0, 0, 1});
  lin.bias().value.fill(0.0f);
  EXPECT_DOUBLE_EQ(evaluate(model, d), 1.0);
}

TEST(Trainer, RejectsZeroEpochs) {
  Dataset d;
  d.num_classes = 2;
  d.images = Tensor({2, 1, 1, 1});
  d.labels = {0, 1};
  Sequential model;
  TrainConfig config;
  config.epochs = 0;
  EXPECT_THROW(train_model(model, d, d, config), std::invalid_argument);
}

}  // namespace
}  // namespace safelight::nn
