// Tests for the photonic device models: Eq. 1 / Eq. 2, Lorentzian
// transmission, weight imprint inversion, WDM grids, banks, converters.
#include <gtest/gtest.h>

#include <cmath>

#include "photonics/constants.hpp"
#include "photonics/converters.hpp"
#include "photonics/laser.hpp"
#include "photonics/microring.hpp"
#include "photonics/mr_bank.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/tuning.hpp"
#include "photonics/wdm.hpp"

namespace safelight::phot {
namespace {

MrGeometry default_geometry() { return MrGeometry{}; }

// ---------------------------------------------------------------- microring

TEST(Microring, Eq1ResonanceNearTarget) {
  const Microring ring(default_geometry(), 1550.0);
  // Eq. 1: lambda = 2*pi*R*n_eff/m with m chosen nearest the target; the
  // natural resonance must be within half an FSR of 1550 nm.
  EXPECT_NEAR(ring.natural_resonance_nm(), 1550.0, ring.fsr_nm() / 2 + 1e-9);
  // Eq. 1 identity holds exactly for the selected order.
  const double circumference_nm = 2.0 * M_PI * 5.0 * 1000.0;
  EXPECT_NEAR(ring.natural_resonance_nm(),
              circumference_nm * kEffectiveIndex /
                  static_cast<double>(ring.resonance_order()),
              1e-9);
  // Trim aligns the working resonance exactly to the carrier.
  EXPECT_NEAR(ring.resonance_nm(), 1550.0, 1e-9);
}

TEST(Microring, FsrMatchesFormula) {
  const Microring ring(default_geometry(), 1550.0);
  const double expected =
      1550.0 * 1550.0 / (kGroupIndex * 2.0 * M_PI * 5000.0);
  EXPECT_NEAR(ring.fsr_nm(), expected, 1e-9);
  EXPECT_NEAR(ring.fsr_nm(), 18.2, 0.3);  // ~18 nm for R = 5 um
}

TEST(Microring, LorentzianShape) {
  const Microring ring(default_geometry(), 1550.0);
  // On resonance: extinction floor.
  EXPECT_NEAR(ring.transmission(1550.0), default_geometry().t_min, 1e-9);
  // At half width: halfway point of the notch.
  const double half = ring.fwhm_nm() / 2.0;
  EXPECT_NEAR(ring.transmission(1550.0 + half),
              1.0 - (1.0 - default_geometry().t_min) / 2.0, 1e-9);
  // Far off resonance: ~1.
  EXPECT_GT(ring.transmission(1550.0 + 20 * half), 0.99);
  // Symmetry.
  EXPECT_NEAR(ring.transmission(1550.0 + 0.1),
              ring.transmission(1550.0 - 0.1), 1e-12);
}

TEST(Microring, TransmissionBounded) {
  const Microring ring(default_geometry(), 1550.0);
  for (double d = -5.0; d <= 5.0; d += 0.01) {
    const double t = ring.transmission(1550.0 + d);
    EXPECT_GE(t, default_geometry().t_min - 1e-12);
    EXPECT_LE(t, 1.0);
  }
}

TEST(Microring, WeightImprintInversionExact) {
  Microring ring(default_geometry(), 1550.0);
  for (double target : {0.05, 0.3, 0.5, 0.8, 0.95}) {
    ring.imprint_weight(target);
    EXPECT_NEAR(ring.transmission(1550.0), target, 1e-9) << target;
  }
}

TEST(Microring, ImprintRejectsOutOfRange) {
  Microring ring(default_geometry(), 1550.0);
  EXPECT_THROW(ring.imprint_weight(1.0), std::invalid_argument);   // needs inf
  EXPECT_THROW(ring.imprint_weight(0.001), std::invalid_argument); // below floor
}

TEST(Microring, Eq2ThermalShift) {
  const Microring ring(default_geometry(), 1550.0);
  // Eq. 2 with Gamma=0.8, dn/dT=1.86e-4, lambda=1550, n_g=4.2.
  const double expected_per_k = 0.8 * 1.86e-4 * 1550.0 / 4.2;
  EXPECT_NEAR(ring.thermal_shift_nm(1.0), expected_per_k, 1e-9);
  EXPECT_NEAR(ring.thermal_shift_nm(10.0), 10.0 * expected_per_k, 1e-9);
  EXPECT_NEAR(expected_per_k, 0.0549, 5e-4);  // ~0.055 nm/K
  EXPECT_NEAR(thermal_shift_per_kelvin_nm(), expected_per_k, 1e-12);
}

TEST(Microring, TemperatureShiftsResonance) {
  Microring ring(default_geometry(), 1550.0);
  const double t0 = ring.transmission(1550.0);
  ring.set_temperature_delta(5.0);
  EXPECT_GT(ring.resonance_nm(), 1550.0);  // red shift
  EXPECT_GT(ring.transmission(1550.0), t0);
  ring.set_temperature_delta(0.0);
  EXPECT_NEAR(ring.transmission(1550.0), t0, 1e-12);
}

TEST(Microring, GeometryValidation) {
  MrGeometry g;
  g.radius_um = -1.0;
  EXPECT_THROW(Microring(g, 1550.0), std::invalid_argument);
  g = MrGeometry{};
  g.q_factor = 10.0;
  EXPECT_THROW(Microring(g, 1550.0), std::invalid_argument);
  EXPECT_THROW(Microring(MrGeometry{}, 500.0), std::invalid_argument);
}

TEST(Microring, DetuningForTransmissionClosedForm) {
  const double fwhm = 0.1, t_min = 0.02;
  // At the half-power point the detuning equals FWHM/2.
  const double half_power = 1.0 - (1.0 - t_min) / 2.0;
  EXPECT_NEAR(Microring::detuning_for_transmission(half_power, fwhm, t_min),
              fwhm / 2.0, 1e-12);
  // Monotone in the target.
  EXPECT_LT(Microring::detuning_for_transmission(0.3, fwhm, t_min),
            Microring::detuning_for_transmission(0.9, fwhm, t_min));
  EXPECT_THROW(Microring::detuning_for_transmission(1.0, fwhm, t_min),
               std::invalid_argument);
}

// ---------------------------------------------------------------- tuning

TEST(Tuning, EoParameters) {
  const TuningCircuit eo = eo_tuning();
  EXPECT_EQ(eo.method, TuningMethod::kElectroOptic);
  EXPECT_NEAR(eo.power_mw(1.0 * eo.max_range_nm),
              4e-3 * eo.max_range_nm, 1e-9);  // ~4 uW/nm
  EXPECT_LT(eo.settle_latency_ns(), 10.0);    // ns-class
  EXPECT_TRUE(eo.can_reach(0.5));
  EXPECT_FALSE(eo.can_reach(5.0));
  EXPECT_THROW(eo.power_mw(5.0), std::invalid_argument);
}

TEST(Tuning, ToParameters) {
  const double fsr = 18.2;
  const TuningCircuit to = to_tuning(fsr);
  EXPECT_EQ(to.method, TuningMethod::kThermoOptic);
  EXPECT_NEAR(to.power_mw(fsr), 27.0, 1e-9);  // 27 mW per FSR
  EXPECT_GT(to.settle_latency_ns(), 100.0);   // us-class
  EXPECT_TRUE(to.can_reach(fsr));
  EXPECT_THROW(to_tuning(0.0), std::invalid_argument);
}

TEST(Tuning, EoFasterButWeakerThanTo) {
  const TuningCircuit eo = eo_tuning();
  const TuningCircuit to = to_tuning(18.2);
  EXPECT_LT(eo.settle_latency_ns(), to.settle_latency_ns());
  EXPECT_LT(eo.max_range_nm, to.max_range_nm);
  EXPECT_LT(eo.power_per_nm_mw, to.power_per_nm_mw);
}

// ---------------------------------------------------------------- wdm

TEST(Wdm, UniformSpacingInsideFsr) {
  const WdmGrid grid(20, 1550.0, 18.2);
  EXPECT_EQ(grid.channel_count(), 20u);
  EXPECT_NEAR(grid.spacing_nm(), 18.2 / 20.0, 1e-12);
  for (std::size_t c = 1; c < 20; ++c) {
    EXPECT_NEAR(grid.wavelength(c) - grid.wavelength(c - 1),
                grid.spacing_nm(), 1e-9);
  }
  // Centered on the carrier.
  EXPECT_NEAR((grid.wavelength(0) + grid.wavelength(19)) / 2.0, 1550.0,
              1e-9);
}

TEST(Wdm, NearestChannelSnapsAndRejects) {
  const WdmGrid grid(4, 1550.0, 4.0);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(grid.nearest_channel(grid.wavelength(c)), static_cast<int>(c));
    EXPECT_EQ(grid.nearest_channel(grid.wavelength(c) + 0.3), static_cast<int>(c));
  }
  // One spacing beyond the last channel -> unsupported (paper Fig. 5).
  EXPECT_EQ(grid.nearest_channel(grid.wavelength(3) + 1.0), -1);
  EXPECT_EQ(grid.nearest_channel(grid.wavelength(0) - 1.0), -1);
}

TEST(Wdm, SingleChannelGrid) {
  const WdmGrid grid(1, 1550.0, 18.0);
  EXPECT_NEAR(grid.wavelength(0), 1550.0, 1e-9);
  EXPECT_THROW(grid.wavelength(1), std::out_of_range);
}

TEST(Wdm, InvalidConfigThrows) {
  EXPECT_THROW(WdmGrid(0, 1550.0, 18.0), std::invalid_argument);
  EXPECT_THROW(WdmGrid(4, 1550.0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- encoding

TEST(WeightEncoding, RoundTrip) {
  const WeightEncoding enc;
  for (double w : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(enc.to_magnitude(enc.to_transmission(w)), w, 1e-12);
  }
  EXPECT_THROW(enc.to_transmission(1.5), std::invalid_argument);
}

TEST(WeightEncoding, OffResonanceDecodesAboveMax) {
  const WeightEncoding enc;
  EXPECT_GT(enc.to_magnitude(1.0), 1.0);  // stuck-at-max overdrive
}

// ---------------------------------------------------------------- bank

struct BankSize {
  std::size_t channels;
  double q;
};

class MrBankTest : public ::testing::TestWithParam<BankSize> {
 protected:
  MrBank make_bank() const {
    MrGeometry g;
    g.q_factor = GetParam().q;
    const Microring reference(g, 1550.0);
    const WdmGrid grid(GetParam().channels, 1550.0, reference.fsr_nm());
    return MrBank(g, grid);
  }
};

TEST_P(MrBankTest, EffectiveWeightsTrackNominal) {
  MrBank bank = make_bank();
  Rng rng(31);
  std::vector<double> weights(bank.size());
  for (auto& w : weights) w = rng.uniform(-0.9, 0.9);
  bank.set_weights(weights);
  const auto effective = bank.effective_weights();
  for (std::size_t c = 0; c < bank.size(); ++c) {
    // Inter-channel crosstalk bounds the error to a few percent.
    EXPECT_NEAR(effective[c], weights[c], 0.05) << "channel " << c;
  }
}

TEST_P(MrBankTest, DotProductMatchesIdeal) {
  MrBank bank = make_bank();
  Rng rng(37);
  std::vector<double> weights(bank.size()), activations(bank.size());
  double ideal = 0.0;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    weights[i] = rng.uniform(-0.9, 0.9);
    activations[i] = rng.uniform(0.0, 1.0);
    ideal += weights[i] * activations[i];
  }
  bank.set_weights(weights);
  EXPECT_NEAR(bank.dot_product(activations), ideal,
              0.03 * static_cast<double>(bank.size()));
}

TEST_P(MrBankTest, ActuationParkSticksNearMax) {
  MrBank bank = make_bank();
  std::vector<double> weights(bank.size(), 0.2);
  weights[0] = -0.2;
  bank.set_weights(weights);
  bank.park_off_resonance(0);
  const auto effective = bank.effective_weights();
  // Parked ring's channel decodes near max magnitude, sign preserved.
  EXPECT_LT(effective[0], -0.85);
  // Other channels barely affected.
  for (std::size_t c = 1; c < bank.size(); ++c) {
    EXPECT_NEAR(effective[c], 0.2, 0.08);
  }
}

TEST_P(MrBankTest, UniformShiftMovesWeightsToNeighbors) {
  MrBank bank = make_bank();
  Rng rng(41);
  std::vector<double> weights(bank.size());
  for (auto& w : weights) w = rng.uniform(0.1, 0.9);
  bank.set_weights(weights);

  // Shift every ring by exactly +1 channel spacing (paper Fig. 5). Eq. 2
  // scales with each ring's own carrier wavelength, so the delta-T needed
  // for a one-spacing shift differs slightly per ring; use the exact
  // per-ring value so the test isolates the neighbor-shift semantics.
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const double per_k = bank.ring(i).thermal_shift_nm(1.0);
    bank.set_temperature_delta(i, bank.grid().spacing_nm() / per_k);
  }
  const auto effective = bank.effective_weights();
  // Channel c now carries ring c-1's weight; channel 0 is unmodulated.
  EXPECT_GT(effective[0], 0.95);
  for (std::size_t c = 1; c < bank.size(); ++c) {
    EXPECT_NEAR(std::abs(effective[c]), weights[c - 1], 0.08)
        << "channel " << c;
  }
}

TEST_P(MrBankTest, ResetAttacksRestoresNominal) {
  MrBank bank = make_bank();
  std::vector<double> weights(bank.size(), 0.5);
  bank.set_weights(weights);
  const auto before = bank.effective_weights();
  bank.park_off_resonance(0);
  bank.set_temperature_delta(1 % bank.size(), 30.0);
  bank.reset_attacks();
  const auto after = bank.effective_weights();
  for (std::size_t c = 0; c < bank.size(); ++c) {
    EXPECT_NEAR(after[c], before[c], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MrBankTest,
    ::testing::Values(BankSize{3, 20000.0}, BankSize{20, 20000.0},
                      BankSize{150, 150000.0}));

TEST(MrBank, RejectsBadInputs) {
  MrGeometry g;
  const Microring reference(g, 1550.0);
  const WdmGrid grid(4, 1550.0, reference.fsr_nm());
  MrBank bank(g, grid);
  EXPECT_THROW(bank.set_weights({0.1, 0.2}), std::invalid_argument);
  EXPECT_THROW(bank.set_weights({0.1, 0.2, 0.3, 1.5}),
               std::invalid_argument);
  EXPECT_THROW(bank.park_off_resonance(4), std::invalid_argument);
  EXPECT_THROW(bank.dot_product({1.0}), std::invalid_argument);
  EXPECT_THROW(bank.ring(9), std::invalid_argument);
}

TEST(MrBank, EncodingFloorMustCoverDevice) {
  MrGeometry g;
  g.t_min = 0.1;
  const Microring reference(g, 1550.0);
  const WdmGrid grid(4, 1550.0, reference.fsr_nm());
  WeightEncoding enc;
  enc.t_min = 0.02;  // below the device's extinction floor
  EXPECT_THROW(MrBank(g, grid, enc), std::invalid_argument);
}

// ---------------------------------------------------------------- laser/pd

TEST(Laser, PowerAccounting) {
  const WdmGrid grid(10, 1550.0, 18.0);
  LaserSource laser(grid, 1.0, 0.2);
  EXPECT_DOUBLE_EQ(laser.total_optical_power_mw(), 10.0);
  EXPECT_DOUBLE_EQ(laser.electrical_power_mw(), 50.0);
  laser.apply_loss_db(3.0);
  EXPECT_NEAR(laser.total_optical_power_mw(), 5.01, 0.02);  // -3 dB ~ half
  EXPECT_THROW(laser.apply_loss_db(-1.0), std::invalid_argument);
}

TEST(Laser, RejectsBadConfig) {
  const WdmGrid grid(2, 1550.0, 18.0);
  EXPECT_THROW(LaserSource(grid, 0.0), std::invalid_argument);
  EXPECT_THROW(LaserSource(grid, 1.0, 1.5), std::invalid_argument);
}

TEST(Photodetector, SumsChannels) {
  Photodetector pd(PhotodetectorConfig{2.0, 0.0, 1});
  EXPECT_DOUBLE_EQ(pd.detect_ma({1.0, 2.0, 3.0}), 12.0);
  EXPECT_THROW(pd.detect_ma({-1.0}), std::invalid_argument);
}

TEST(Photodetector, NoiseIsZeroMeanGaussian) {
  Photodetector pd(PhotodetectorConfig{1.0, 0.5, 42});
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += pd.detect_ma({1.0}) - 1.0;
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

// ---------------------------------------------------------------- converters

TEST(Quantizer, SnapAndClamp) {
  const Quantizer q(QuantizerConfig{2, 0.0, 3.0});  // 4 levels: 0,1,2,3
  EXPECT_DOUBLE_EQ(q.quantize(1.4), 1.0);
  EXPECT_DOUBLE_EQ(q.quantize(1.6), 2.0);
  EXPECT_DOUBLE_EQ(q.quantize(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(q.quantize(99.0), 3.0);
  EXPECT_DOUBLE_EQ(q.max_error(), 0.5);
}

TEST(Quantizer, HighResolutionNearlyTransparent) {
  const Quantizer q(QuantizerConfig{16, -1.0, 1.0});
  for (double v : {-0.73, -0.1, 0.0, 0.42, 0.99}) {
    EXPECT_NEAR(q.quantize(v), v, q.max_error() + 1e-12);
  }
}

TEST(Quantizer, IdempotentOnGridPoints) {
  const Quantizer q(QuantizerConfig{4, -1.0, 1.0});
  for (double v : {-1.0, -0.5, 0.0, 0.25, 1.0}) {
    const double once = q.quantize(v);
    EXPECT_DOUBLE_EQ(q.quantize(once), once);
  }
}

TEST(Quantizer, ConfigValidation) {
  EXPECT_THROW(Quantizer(QuantizerConfig{0, -1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(Quantizer(QuantizerConfig{8, 1.0, -1.0}),
               std::invalid_argument);
  EXPECT_EQ((QuantizerConfig{8, -1.0, 1.0}).levels(), 256u);
}

}  // namespace
}  // namespace safelight::phot
