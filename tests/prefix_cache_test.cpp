// Prefix-activation cache: scenario accuracies must be bitwise-identical
// with caching on and off, for every attack target (FC-only attacks resume
// deep in the network, CONV/both attacks mostly start at layer 0), and the
// executor's split forward must reproduce the unsplit forward exactly.
#include <gtest/gtest.h>

#include <cstring>

#include "core/evaluation.hpp"
#include "core/experiment_scale.hpp"
#include "core/zoo.hpp"
#include "nn/models.hpp"

namespace safelight::core {
namespace {

/// Small trained-ish model + setup shared by the tests (training from the
/// zoo would be slow; conditioning alone exercises the full path).
struct Fixture {
  Fixture()
      : setup(experiment_setup(nn::ModelId::kCnn1, Scale::kTiny)),
        model(nn::make_model(setup.model, setup.model_config)) {}

  ExperimentSetup setup;
  std::unique_ptr<nn::Sequential> model;
};

std::vector<attack::AttackScenario> probe_grid() {
  return attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kFcBlock, attack::AttackTarget::kConvBlock,
       attack::AttackTarget::kBothBlocks},
      {0.05}, /*seed_count=*/2);
}

TEST(PrefixCache, ScenarioAccuraciesBitwiseIdenticalOnVsOff) {
  Fixture on_fix, off_fix;
  AttackEvaluator cached(on_fix.setup, *on_fix.model, "test", "");
  AttackEvaluator plain(off_fix.setup, *off_fix.model, "test", "");
  cached.set_prefix_cache(true);
  plain.set_prefix_cache(false);

  for (const auto& scenario : probe_grid()) {
    const double with_cache = cached.evaluate_scenario(scenario);
    const double without = plain.evaluate_scenario(scenario);
    // Bitwise, not approximate: the cache must not change a single ulp.
    EXPECT_EQ(std::memcmp(&with_cache, &without, sizeof(double)), 0)
        << scenario.id() << ": " << with_cache << " vs " << without;
  }
  EXPECT_GT(cached.prefix_hits(), 0u) << "cache never engaged";
  EXPECT_EQ(plain.prefix_hits(), 0u);
}

TEST(PrefixCache, FcAttackResumesPastConvStack) {
  Fixture fix;
  AttackEvaluator evaluator(fix.setup, *fix.model, "test", "");
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kFcBlock;
  scenario.fraction = 0.10;
  scenario.seed = 3;
  (void)evaluator.evaluate_scenario(scenario);
  EXPECT_GT(evaluator.prefix_hits(), 0u);
  EXPECT_GE(evaluator.prefix_boundaries(), 1u);
  // After restore_clean, no layer is dirty.
  EXPECT_EQ(evaluator.first_dirty_layer(), fix.model->size());
}

TEST(PrefixCache, SplitForwardMatchesUnsplitBitwise) {
  Fixture fix;
  accel::OnnExecutor executor(fix.setup.accelerator,
                              {/*quantize_weights=*/true,
                               /*quantize_activations=*/true});
  executor.condition_weights(*fix.model);
  const nn::Dataset data = make_test_data(fix.setup).take(40);
  auto [images, labels] = data.batch(0, data.size());
  (void)labels;

  const nn::Tensor full = executor.forward(*fix.model, images);
  for (std::size_t split = 0; split <= fix.model->size(); ++split) {
    const nn::Tensor prefix =
        executor.forward_prefix(*fix.model, images, split);
    const nn::Tensor resumed = executor.forward_from(*fix.model, prefix, split);
    ASSERT_EQ(resumed.shape(), full.shape()) << "split at " << split;
    EXPECT_EQ(std::memcmp(resumed.data(), full.data(),
                          full.numel() * sizeof(float)),
              0)
        << "split at layer " << split << " is not bitwise-identical";
  }
}

TEST(PrefixCache, EvaluateFromMatchesEvaluate) {
  Fixture fix;
  accel::OnnExecutor executor(fix.setup.accelerator);
  executor.condition_weights(*fix.model);
  const nn::Dataset data = make_test_data(fix.setup).take(100);
  const std::size_t batch = 32;
  const double direct = executor.evaluate(*fix.model, data, batch);
  for (std::size_t split : {std::size_t{1}, fix.model->size() / 2,
                            fix.model->size()}) {
    const auto prefix =
        executor.prefix_activations(*fix.model, data, split, batch);
    const double resumed =
        executor.evaluate_from(*fix.model, data, split, prefix, batch);
    EXPECT_EQ(std::memcmp(&direct, &resumed, sizeof(double)), 0)
        << "evaluate_from split " << split;
  }
}

}  // namespace
}  // namespace safelight::core
