// Cross-module integration tests: the end-to-end claims of the reproduction.
//
// These tests run the tiny experiment scale (seconds, not minutes) and
// assert the *shape* of the paper's findings:
//   1. the unattacked accelerator path matches pure software inference,
//   2. attacks degrade accuracy, monotonically in intensity (on average),
//   3. hotspot attacks are at least as damaging as actuation attacks,
//   4. the fast corruption path agrees with the device-level bank model,
//   5. noise-aware + L2 training recovers part of the drop.
#include <gtest/gtest.h>

#include <filesystem>

#include "accel/vdp.hpp"
#include "attacks/reference_exec.hpp"
#include "core/evaluation.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "core/mitigation.hpp"
#include "core/susceptibility.hpp"
#include "nn/serialize.hpp"

namespace safelight {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = "/tmp/safelight_integration_zoo";
    std::filesystem::create_directories(dir_);
  }

  core::ExperimentSetup setup_ =
      core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  static std::string dir_;
};

std::string IntegrationFixture::dir_;

TEST_F(IntegrationFixture, UnattackedExecutorMatchesSoftwareInference) {
  core::ModelZoo zoo(dir_);
  auto model = zoo.get_or_train(setup_, core::variant_by_name("Original"));
  const nn::Dataset test = core::make_test_data(setup_).take(60);
  const double software = nn::evaluate(*model, test);

  accel::OnnExecutor executor(setup_.accelerator);
  executor.condition_weights(*model);
  const double accelerator = executor.evaluate(*model, test);
  // DAC conditioning may flip at most a couple of borderline samples.
  EXPECT_NEAR(accelerator, software, 0.05);
}

TEST_F(IntegrationFixture, AttackDegradationMonotoneInIntensity) {
  core::ModelZoo zoo(dir_);
  auto model = zoo.get_or_train(setup_, core::variant_by_name("Original"));
  core::AttackEvaluator evaluator(setup_, *model, "Original", dir_);
  const double baseline = evaluator.baseline_accuracy();

  for (auto vector : {attack::AttackVector::kActuation,
                      attack::AttackVector::kHotspot}) {
    // Mean over a few placements per fraction to smooth sampling noise.
    auto mean_at = [&](double fraction) {
      double sum = 0.0;
      const int seeds = 3;
      for (int s = 0; s < seeds; ++s) {
        attack::AttackScenario scenario;
        scenario.vector = vector;
        scenario.target = attack::AttackTarget::kBothBlocks;
        scenario.fraction = fraction;
        scenario.seed = 100 + static_cast<std::uint64_t>(s);
        sum += evaluator.evaluate_scenario(scenario);
      }
      return sum / seeds;
    };
    const double at1 = mean_at(0.01);
    const double at10 = mean_at(0.10);
    EXPECT_LE(at10, at1 + 0.05) << attack::to_string(vector);
    EXPECT_LT(at10, baseline) << attack::to_string(vector);
  }
}

TEST_F(IntegrationFixture, TrainAttackMitigateRecovers) {
  core::ModelZoo zoo(dir_);
  auto original = zoo.get_or_train(setup_, core::variant_by_name("Original"));
  auto robust = zoo.get_or_train(setup_, core::variant_by_name("l2+n3"));

  core::AttackEvaluator original_eval(setup_, *original, "Original", dir_);
  core::AttackEvaluator robust_eval(setup_, *robust, "l2+n3", dir_);

  // Across several hotspot placements, the robust variant should not be
  // (meaningfully) worse on average.
  double original_sum = 0.0, robust_sum = 0.0;
  const int seeds = 4;
  for (int s = 0; s < seeds; ++s) {
    attack::AttackScenario scenario;
    scenario.vector = attack::AttackVector::kHotspot;
    scenario.target = attack::AttackTarget::kBothBlocks;
    scenario.fraction = 0.05;
    scenario.seed = 200 + static_cast<std::uint64_t>(s);
    original_sum += original_eval.evaluate_scenario(scenario);
    robust_sum += robust_eval.evaluate_scenario(scenario);
  }
  EXPECT_GE(robust_sum / seeds, original_sum / seeds - 0.05);
}

TEST_F(IntegrationFixture, SusceptibilityReportShape) {
  core::ModelZoo zoo(dir_);
  core::SusceptibilityOptions options;
  options.seed_count = 2;
  options.cache_dir = dir_;
  const core::SusceptibilityReport report =
      core::run_susceptibility(setup_, zoo, options);

  EXPECT_EQ(report.rows.size(), 2u * 3u * 3u * 2u);  // grid x 2 seeds
  EXPECT_EQ(report.groups.size(), 18u);
  EXPECT_GT(report.baseline_accuracy, 0.3);
  for (const auto& group : report.groups) {
    EXPECT_EQ(group.accuracy.n, 2u);
    EXPECT_GE(group.accuracy.min, 0.0);
    EXPECT_LE(group.accuracy.max, 1.0);
    EXPECT_GE(report.baseline_accuracy,
              group.accuracy.median - 0.25);  // attacks don't help much
  }
  // Lookup API.
  EXPECT_NO_THROW(report.group(attack::AttackVector::kHotspot,
                               attack::AttackTarget::kFcBlock, 0.05));
  EXPECT_THROW(report.group(attack::AttackVector::kHotspot,
                            attack::AttackTarget::kFcBlock, 0.42),
               std::invalid_argument);
}

TEST_F(IntegrationFixture, MitigationReportCoversVariants) {
  // Use a 2-variant sweep through the public API by checking the full
  // mitigation run stays consistent (11 variants would take minutes at
  // tiny scale; the zoo caches make the second run cheap).
  core::ModelZoo zoo(dir_);
  core::MitigationOptions options;
  options.seed_count = 1;
  options.cache_dir = dir_;
  const core::MitigationReport report =
      core::run_mitigation(setup_, zoo, options);
  EXPECT_EQ(report.outcomes.size(), 11u);
  EXPECT_GT(report.original_baseline, 0.0);
  for (const auto& outcome : report.outcomes) {
    EXPECT_EQ(outcome.under_attack.n, 18u);  // 2x3x3 grid x 1 seed
  }
  const auto& best = report.best_robust();
  EXPECT_FALSE(best.variant.is_original());
  // The selected best is at least as good (median) as plain L2.
  EXPECT_GE(best.under_attack.median,
            report.outcome("L2_reg").under_attack.median - 1e-9);
}

TEST(VdpIntegration, UnitAgreesWithMappedLinearLayer) {
  // A VDP unit evaluating a small FC layer's rows must agree with the
  // layer's own matrix-vector product (normalized domain).
  Rng rng(8);
  nn::Linear fc(6, 4, rng);
  float scale = fc.weight().value.abs_max();

  phot::MrGeometry geometry;
  accel::VdpUnit unit(4, 6, geometry, 1550.0);
  std::vector<std::vector<double>> rows(4, std::vector<double>(6));
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      rows[r][c] = fc.weight().value[r * 6 + c] / scale;
    }
  }
  unit.set_weights(rows);

  const std::vector<double> x = {0.3, -0.2, 0.9, 0.1, -0.7, 0.5};
  nn::Tensor xt({1, 6});
  for (std::size_t i = 0; i < 6; ++i) xt[i] = static_cast<float>(x[i]);
  fc.bias().value.fill(0.0f);
  const nn::Tensor expected = fc.forward(xt, false);

  const std::vector<double> out = unit.multiply(x);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(out[r] * scale, expected[r], 0.08) << "row " << r;
  }
}

class ReferenceExecFixture : public ::testing::Test {
 protected:
  ReferenceExecFixture() {
    Rng rng(13);
    model_.emplace<nn::Flatten>();
    fc_ = &model_.emplace<nn::Linear>(20, 6, rng, /*bias=*/false);
    config_ = accel::AcceleratorConfig::crosslight();
    config_.conv = accel::BlockDims{1, 1, 1};
    config_.fc = accel::BlockDims{1, 2, 150};  // 300 slots, 1 pass for 120 w
    Rng xrng(14);
    for (std::size_t i = 0; i < 20; ++i) {
      x_.push_back(xrng.uniform(-1.0, 1.0));
    }
    pristine_ = nn::snapshot_state(model_);
  }

  /// Fast-path output: restore the clean weights, corrupt via mapping,
  /// plain matvec, restore again.
  std::vector<double> fast_path(const attack::AttackScenario& scenario) {
    nn::restore_state(model_, pristine_);
    accel::WeightStationaryMapping mapping(model_, config_);
    attack::apply_attack(mapping, scenario);
    std::vector<double> y(6, 0.0);
    for (std::size_t o = 0; o < 6; ++o) {
      for (std::size_t i = 0; i < 20; ++i) {
        y[o] += static_cast<double>(fc_->weight().value[o * 20 + i]) * x_[i];
      }
    }
    nn::restore_state(model_, pristine_);
    return y;
  }

  nn::Sequential model_;
  nn::Linear* fc_ = nullptr;
  accel::AcceleratorConfig config_;
  std::vector<double> x_;
  std::vector<nn::Tensor> pristine_;
};

TEST_F(ReferenceExecFixture, CleanPathsAgree) {
  attack::AttackScenario noop;
  noop.fraction = 0.0;
  accel::WeightStationaryMapping mapping(model_, config_);
  const auto reference =
      attack::reference_fc_forward(mapping, *fc_, x_, noop);
  const auto fast = fast_path(noop);
  for (std::size_t o = 0; o < 6; ++o) {
    // Clean disagreement is bounded by bank crosstalk (~1%) times the
    // activation L1 mass.
    EXPECT_NEAR(reference[o], fast[o], 0.35) << "output " << o;
  }
}

TEST_F(ReferenceExecFixture, ActuationPathsAgree) {
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kFcBlock;
  scenario.fraction = 0.10;
  scenario.seed = 3;
  accel::WeightStationaryMapping mapping(model_, config_);
  const auto reference =
      attack::reference_fc_forward(mapping, *fc_, x_, scenario);
  const auto fast = fast_path(scenario);
  for (std::size_t o = 0; o < 6; ++o) {
    EXPECT_NEAR(reference[o], fast[o], 0.35) << "output " << o;
  }
}

TEST_F(ReferenceExecFixture, HotspotPathsAgree) {
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kHotspot;
  scenario.target = attack::AttackTarget::kFcBlock;
  scenario.fraction = 0.5;  // one of the two banks
  scenario.seed = 7;
  accel::WeightStationaryMapping mapping(model_, config_);
  const auto reference =
      attack::reference_fc_forward(mapping, *fc_, x_, scenario);
  const auto fast = fast_path(scenario);
  for (std::size_t o = 0; o < 6; ++o) {
    EXPECT_NEAR(reference[o], fast[o], 0.35) << "output " << o;
  }
  // And the attack visibly moved the output.
  attack::AttackScenario noop;
  noop.fraction = 0.0;
  const auto clean = fast_path(noop);
  double moved = 0.0;
  for (std::size_t o = 0; o < 6; ++o) {
    moved = std::max(moved, std::abs(clean[o] - fast[o]));
  }
  EXPECT_GT(moved, 0.05);
}

TEST_F(ReferenceExecFixture, RejectsMultiPassModels) {
  accel::AcceleratorConfig tiny = config_;
  tiny.fc = accel::BlockDims{1, 1, 50};  // 50 slots for 120 weights
  accel::WeightStationaryMapping mapping(model_, tiny);
  attack::AttackScenario noop;
  noop.fraction = 0.0;
  EXPECT_THROW(attack::reference_fc_forward(mapping, *fc_, x_, noop),
               std::invalid_argument);
}

TEST(ZooPersistence, SurvivesProcessBoundarySimulation) {
  // Serialize -> destroy -> reload -> identical logits (simulates separate
  // bench processes sharing the zoo).
  const core::ExperimentSetup setup =
      core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
  const std::string dir = "/tmp/safelight_integration_zoo2";
  std::filesystem::remove_all(dir);
  nn::Tensor probe({2, 1, 20, 20});
  Rng rng(3);
  for (std::size_t i = 0; i < probe.numel(); ++i) {
    probe[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  nn::Tensor logits_a;
  {
    core::ModelZoo zoo(dir);
    auto model = zoo.get_or_train(setup, core::variant_by_name("Original"));
    logits_a = model->forward(probe, false);
  }
  {
    core::ModelZoo zoo(dir);
    auto model = zoo.get_or_train(setup, core::variant_by_name("Original"));
    const nn::Tensor logits_b = model->forward(probe, false);
    EXPECT_FLOAT_EQ(nn::max_abs_diff(logits_a, logits_b), 0.0f);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace safelight
