// Tests for HT models, attack scenarios, actuation/hotspot planning and the
// weight-corruption fast path.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attacks/corruption.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/serialize.hpp"

namespace safelight::attack {
namespace {

nn::Sequential make_model() {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 16, 6, rng);
  return model;
}

accel::AcceleratorConfig tiny_accelerator() {
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{2, 2, 4};  // 16 slots
  config.fc = accel::BlockDims{2, 4, 10};   // 80 slots
  return config;
}

// ---------------------------------------------------------------- trojan

TEST(Trojan, FullTriggerKeepsAll) {
  Rng rng(3);
  std::vector<HardwareTrojan> population(10);
  const auto triggered =
      apply_trigger_model(population, TriggerModel{1.0}, rng);
  EXPECT_EQ(triggered.size(), 10u);
}

TEST(Trojan, ZeroTriggerKeepsNone) {
  Rng rng(3);
  std::vector<HardwareTrojan> population(10);
  const auto triggered =
      apply_trigger_model(population, TriggerModel{0.0}, rng);
  EXPECT_TRUE(triggered.empty());
}

TEST(Trojan, PartialTriggerBinomial) {
  Rng rng(3);
  std::vector<HardwareTrojan> population(2000);
  const auto triggered =
      apply_trigger_model(population, TriggerModel{0.3}, rng);
  EXPECT_NEAR(static_cast<double>(triggered.size()), 600.0, 80.0);
}

TEST(Trojan, InvalidProbabilityThrows) {
  Rng rng(3);
  EXPECT_THROW(apply_trigger_model({}, TriggerModel{1.5}, rng),
               std::invalid_argument);
}

TEST(Trojan, PayloadNames) {
  EXPECT_EQ(to_string(PayloadKind::kActuationPark), "actuation");
  EXPECT_EQ(to_string(PayloadKind::kHeaterOverdrive), "hotspot");
}

// ---------------------------------------------------------------- scenario

TEST(Scenario, GridHasFullCartesianProduct) {
  const auto grid = paper_scenario_grid(10);
  // 2 vectors x 3 targets x 3 fractions x 10 seeds.
  EXPECT_EQ(grid.size(), 180u);
  std::set<std::string> ids;
  for (const auto& s : grid) ids.insert(s.id());
  EXPECT_EQ(ids.size(), grid.size());  // all unique
}

TEST(Scenario, IdIsStable) {
  AttackScenario s;
  s.vector = AttackVector::kHotspot;
  s.target = AttackTarget::kConvBlock;
  s.fraction = 0.05;
  s.seed = 3;
  EXPECT_EQ(s.id(), "hotspot/CONV/f0.05/s3");
}

TEST(Scenario, ValidationRejectsBadFraction) {
  AttackScenario s;
  s.fraction = 1.5;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Scenario, GridNeedsSeeds) {
  EXPECT_THROW(scenario_grid({AttackVector::kActuation},
                             {AttackTarget::kConvBlock}, {0.01}, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- actuation

TEST(Actuation, VictimCountMatchesFraction) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.10;
  scenario.seed = 1;
  const auto trojans = plan_actuation_attack(config, scenario);
  EXPECT_EQ(trojans.size(), 4000u);  // 10% of 40,000 CONV MRs
  for (const auto& t : trojans) {
    EXPECT_EQ(t.victim_slot.block, accel::BlockKind::kConv);
    EXPECT_EQ(t.payload, PayloadKind::kActuationPark);
  }
}

TEST(Actuation, VictimsAreDistinct) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kBothBlocks;
  scenario.fraction = 0.25;
  scenario.seed = 9;
  const auto trojans = plan_actuation_attack(config, scenario);
  EXPECT_EQ(trojans.size(), 24u);  // 25% of 96
  std::set<std::string> slots;
  for (const auto& t : trojans) slots.insert(t.victim_slot.to_string());
  EXPECT_EQ(slots.size(), trojans.size());
}

TEST(Actuation, DeterministicPerSeedAndDiverseAcrossSeeds) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kFcBlock;
  scenario.fraction = 0.2;
  scenario.seed = 4;
  const auto a = plan_actuation_attack(config, scenario);
  const auto b = plan_actuation_attack(config, scenario);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].victim_slot, b[i].victim_slot);
  }
  scenario.seed = 5;
  const auto c = plan_actuation_attack(config, scenario);
  bool any_different = a.size() != c.size();
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (!(a[i].victim_slot == c[i].victim_slot)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Actuation, TargetRestrictsBlocks) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kFcBlock;
  scenario.fraction = 0.3;
  scenario.seed = 2;
  for (const auto& t : plan_actuation_attack(config, scenario)) {
    EXPECT_EQ(t.victim_slot.block, accel::BlockKind::kFc);
  }
}

TEST(Actuation, ZeroFractionNoVictims) {
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.fraction = 0.0;
  scenario.seed = 1;
  EXPECT_TRUE(plan_actuation_attack(tiny_accelerator(), scenario).empty());
}

TEST(Actuation, RejectsWrongVector) {
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  EXPECT_THROW(plan_actuation_attack(tiny_accelerator(), scenario),
               std::invalid_argument);
}

TEST(Actuation, StuckMagnitudeNearMax) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  for (accel::BlockKind kind :
       {accel::BlockKind::kConv, accel::BlockKind::kFc}) {
    const double stuck = stuck_weight_magnitude(config, kind, 0.5);
    EXPECT_GT(stuck, 0.85) << to_string(kind);
    EXPECT_LT(stuck, 1.1) << to_string(kind);
    // Parked transmission approaches 1 (off-resonance pass-through).
    EXPECT_GT(parked_transmission(config, kind, 0.5), 0.85);
  }
}

// ---------------------------------------------------------------- hotspot

TEST(Hotspot, VictimBanksCoverRequestedMrFraction) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.10;
  scenario.seed = 1;
  const HotspotPlan plan = plan_hotspot_attack(config, scenario);
  // 10% of 40,000 MRs at 20 MRs per bank = 200 banks.
  EXPECT_EQ(plan.trojans.size(), 200u);
  ASSERT_EQ(plan.block_states.size(), 1u);
  EXPECT_EQ(plan.block_states[0].block, accel::BlockKind::kConv);
}

TEST(Hotspot, VictimBanksHeatUp) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.25;  // 4 of 16 MRs -> 1 bank
  scenario.seed = 7;
  const HotspotPlan plan = plan_hotspot_attack(config, scenario);
  ASSERT_FALSE(plan.trojans.empty());
  const auto& victim = plan.trojans.front().victim_bank;
  const double dt = plan.effective_delta_t(victim, 0.0);
  EXPECT_GT(dt, 10.0);   // heater overdrive produces a real hotspot
  EXPECT_LT(dt, 200.0);
}

TEST(Hotspot, CompensationSubtracts) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.25;
  scenario.seed = 7;
  const HotspotPlan plan = plan_hotspot_attack(config, scenario);
  const auto& victim = plan.trojans.front().victim_bank;
  const double raw = plan.effective_delta_t(victim, 0.0);
  EXPECT_NEAR(plan.effective_delta_t(victim, 3.0), raw - 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(plan.effective_delta_t(victim, 1e9), 0.0);
}

TEST(Hotspot, NeighborsReceiveLessHeat) {
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.001;  // a handful of banks
  scenario.seed = 3;
  const HotspotPlan plan = plan_hotspot_attack(config, scenario);
  ASSERT_FALSE(plan.trojans.empty());
  const auto* state = plan.state_for(accel::BlockKind::kConv);
  ASSERT_NE(state, nullptr);
  const auto& victim = plan.trojans.front().victim_bank;
  const std::size_t victim_flat =
      victim.unit * state->banks_per_unit + victim.bank;
  const double victim_dt = state->bank_delta_t[victim_flat];
  // Every non-victim bank is strictly cooler than the victim.
  std::set<std::size_t> victims;
  for (const auto& t : plan.trojans) {
    victims.insert(t.victim_bank.unit * state->banks_per_unit +
                   t.victim_bank.bank);
  }
  for (std::size_t flat = 0; flat < state->bank_delta_t.size(); ++flat) {
    if (victims.count(flat) == 0) {
      EXPECT_LT(state->bank_delta_t[flat], victim_dt);
    }
  }
}

TEST(Hotspot, BothBlocksProducesTwoThermalStates) {
  const accel::AcceleratorConfig config = tiny_accelerator();
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kBothBlocks;
  scenario.fraction = 0.25;
  scenario.seed = 11;
  const HotspotPlan plan = plan_hotspot_attack(config, scenario);
  EXPECT_EQ(plan.block_states.size(), 2u);
  EXPECT_NE(plan.state_for(accel::BlockKind::kConv), nullptr);
  EXPECT_NE(plan.state_for(accel::BlockKind::kFc), nullptr);
}

TEST(Hotspot, RejectsWrongVectorAndBadConfig) {
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  EXPECT_THROW(plan_hotspot_attack(tiny_accelerator(), scenario),
               std::invalid_argument);
  scenario.vector = AttackVector::kHotspot;
  HotspotConfig bad;
  bad.heater_overdrive_mw = 0.0;
  EXPECT_THROW(plan_hotspot_attack(tiny_accelerator(), scenario, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------- corruption

TEST(Corruption, ActuationCorruptsOneWeightPerPassPerVictim) {
  nn::Sequential model = make_model();
  accel::WeightStationaryMapping mapping(model, tiny_accelerator());
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 1.0 / 16.0;  // exactly one CONV slot
  scenario.seed = 2;
  const CorruptionStats stats = apply_attack(mapping, scenario);
  EXPECT_EQ(stats.attacked_mrs, 1u);
  // Conv: 72 weights on 16 slots -> the victim slot serves 4 or 5 passes.
  EXPECT_GE(stats.corrupted_weights, 4u);
  EXPECT_LE(stats.corrupted_weights, 5u);
}

TEST(Corruption, ActuationSetsStuckMagnitudePreservingSign) {
  nn::Sequential model = make_model();
  const auto before = nn::snapshot_state(model);
  accel::WeightStationaryMapping mapping(model, tiny_accelerator());
  AttackScenario scenario;
  scenario.vector = AttackVector::kActuation;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 1.0;  // all CONV slots -> all conv weights corrupted
  scenario.seed = 2;
  apply_attack(mapping, scenario);

  nn::Param* conv_w = model.params()[0];
  const float scale = mapping.scale_of(conv_w);
  const double stuck = stuck_weight_magnitude(
      mapping.config(), accel::BlockKind::kConv, 0.5);
  for (std::size_t i = 0; i < conv_w->value.numel(); ++i) {
    const float original = before[0][i];
    EXPECT_NEAR(std::abs(conv_w->value[i]), stuck * scale, 1e-4);
    if (original != 0.0f) {
      EXPECT_EQ(conv_w->value[i] < 0, original < 0) << i;
    }
  }
}

TEST(Corruption, ZeroFractionIsNoop) {
  nn::Sequential model = make_model();
  const auto before = nn::snapshot_state(model);
  accel::WeightStationaryMapping mapping(model, tiny_accelerator());
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.fraction = 0.0;
  const CorruptionStats stats = apply_attack(mapping, scenario);
  EXPECT_EQ(stats.corrupted_weights, 0u);
  const auto after = nn::snapshot_state(model);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(nn::max_abs_diff(before[i], after[i]), 0.0f);
  }
}

TEST(Corruption, HotspotCorruptsClusters) {
  nn::Sequential model = make_model();
  const auto before = nn::snapshot_state(model);
  accel::WeightStationaryMapping mapping(model, tiny_accelerator());
  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.25;  // one victim bank of 4 MRs
  scenario.seed = 5;
  const CorruptionStats stats = apply_attack(mapping, scenario);
  EXPECT_GE(stats.attacked_banks, 1u);
  EXPECT_GE(stats.thermally_hit_banks, stats.attacked_banks);
  // A bank serves mrs_per_bank consecutive weights per pass; the victim
  // corrupts whole clusters, far more than an equal-MR actuation attack.
  EXPECT_GT(stats.corrupted_weights, 4u);

  // Verify at least one corrupted weight moved to a *different* cluster
  // value (not just stuck-at-max): hotspot shifts neighbor magnitudes in.
  nn::Param* conv_w = model.params()[0];
  std::size_t changed = 0;
  for (std::size_t i = 0; i < conv_w->value.numel(); ++i) {
    if (std::abs(conv_w->value[i] - before[0][i]) > 1e-6f) ++changed;
  }
  EXPECT_GT(changed, 4u);
}

TEST(Corruption, HotspotMatchesBankModelSemantics) {
  // With a full-bank shift of ~1 channel, the corrupted weights must carry
  // the neighbor's magnitude — validate the fast path against MrBank.
  nn::Sequential model = make_model();
  accel::WeightStationaryMapping mapping(model, tiny_accelerator());

  // Run the fast path with an overdrive chosen to shift ~1 channel spacing.
  const accel::AcceleratorConfig& config = mapping.config();
  const phot::WdmGrid grid = config.bank_grid(accel::BlockKind::kConv);
  const phot::Microring ring(config.conv_mr, config.center_wavelength_nm);

  AttackScenario scenario;
  scenario.vector = AttackVector::kHotspot;
  scenario.target = AttackTarget::kConvBlock;
  scenario.fraction = 0.25;
  scenario.seed = 5;
  CorruptionConfig corruption;
  corruption.hotspot.tuning_compensation_k = 0.0;
  const HotspotPlan plan =
      plan_hotspot_attack(config, scenario, corruption.hotspot);
  ASSERT_FALSE(plan.trojans.empty());
  const auto& victim = plan.trojans.front().victim_bank;
  const double delta_t = plan.effective_delta_t(victim, 0.0);

  // Reference: bank model with the same weights and delta-T.
  const auto groups = mapping.bank_weights(victim);
  ASSERT_FALSE(groups.empty());
  std::vector<double> normalized(config.conv.mrs_per_bank, 0.0);
  for (std::size_t mr = 0; mr < groups[0].size(); ++mr) {
    if (groups[0][mr].param == nullptr) continue;
    normalized[mr] = groups[0][mr].read() /
                     mapping.scale_of(groups[0][mr].param);
  }
  phot::MrBank bank(config.conv_mr, grid, config.encoding);
  bank.set_weights(normalized);
  for (std::size_t mr = 0; mr < bank.size(); ++mr) {
    bank.set_temperature_delta(mr, delta_t);
  }
  const std::vector<double> expected = bank.effective_weights();

  apply_attack(mapping, scenario, corruption);
  for (std::size_t mr = 0; mr < groups[0].size(); ++mr) {
    if (groups[0][mr].param == nullptr) continue;
    const float scale = mapping.scale_of(groups[0][mr].param);
    EXPECT_NEAR(groups[0][mr].read(),
                static_cast<float>(expected[mr]) * scale, 1e-4)
        << "mr " << mr;
  }
}

TEST(Corruption, HotspotDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    nn::Sequential model = make_model();
    accel::WeightStationaryMapping mapping(model, tiny_accelerator());
    AttackScenario scenario;
    scenario.vector = AttackVector::kHotspot;
    scenario.target = AttackTarget::kBothBlocks;
    scenario.fraction = 0.2;
    scenario.seed = seed;
    apply_attack(mapping, scenario);
    return nn::snapshot_state(model);
  };
  const auto a = run(3), b = run(3), c = run(4);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(nn::max_abs_diff(a[i], b[i]), 0.0f);
  }
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, nn::max_abs_diff(a[i], c[i]));
  }
  EXPECT_GT(diff, 0.0f);
}

TEST(Corruption, StuckAtZeroAblationViaParkFraction) {
  // Parking exactly on resonance (park fraction 0) floors the transmission:
  // the stuck weight collapses toward zero instead of max — the ablation
  // payload discussed in DESIGN.md.
  const accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  const double stuck_on_resonance =
      config.encoding.to_magnitude(parked_transmission(
          config, accel::BlockKind::kConv, 1e-6));
  EXPECT_NEAR(stuck_on_resonance, 0.0, 0.02);
}

}  // namespace
}  // namespace safelight::attack
