// Tests for the accelerator architecture, slot addressing, weight-stationary
// mapping, VDP units, executor and energy model.
#include <gtest/gtest.h>

#include <set>

#include "accel/energy.hpp"
#include "accel/executor.hpp"
#include "accel/mapping.hpp"
#include "accel/vdp.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/models.hpp"
#include "nn/pool.hpp"
#include "nn/serialize.hpp"
#include "nn/synthetic.hpp"

namespace safelight::accel {
namespace {

// ---------------------------------------------------------------- arch

TEST(Arch, CrosslightDimensionsMatchPaper) {
  const AcceleratorConfig config = AcceleratorConfig::crosslight();
  // Paper §IV: CONV block m=100 VDP units of 20x20 MRs; FC block n=60 VDP
  // units of 150x150 MRs.
  EXPECT_EQ(config.conv.units, 100u);
  EXPECT_EQ(config.conv.banks_per_unit, 20u);
  EXPECT_EQ(config.conv.mrs_per_bank, 20u);
  EXPECT_EQ(config.conv.slot_count(), 40'000u);
  EXPECT_EQ(config.fc.units, 60u);
  EXPECT_EQ(config.fc.slot_count(), 1'350'000u);
  EXPECT_EQ(config.fc.bank_count(), 9'000u);
}

TEST(Arch, FcBlockUsesHighQRings) {
  const AcceleratorConfig config = AcceleratorConfig::crosslight();
  EXPECT_GT(config.fc_mr.q_factor, config.conv_mr.q_factor);
  // Linewidth must stay well below channel spacing in both blocks.
  for (BlockKind kind : {BlockKind::kConv, BlockKind::kFc}) {
    const phot::WdmGrid grid = config.bank_grid(kind);
    const phot::Microring ring(config.geometry(kind),
                               config.center_wavelength_nm);
    EXPECT_LT(ring.fwhm_nm() * 3.0, grid.spacing_nm())
        << to_string(kind);
  }
}

TEST(Arch, ScaledShrinksUnitCounts) {
  const AcceleratorConfig config = AcceleratorConfig::scaled(10);
  EXPECT_EQ(config.conv.units, 10u);
  EXPECT_EQ(config.fc.units, 6u);
  EXPECT_EQ(config.conv.banks_per_unit, 20u);  // per-unit shape preserved
  const AcceleratorConfig floor = AcceleratorConfig::scaled(1000);
  EXPECT_EQ(floor.conv.units, 1u);
  EXPECT_EQ(floor.fc.units, 1u);
}

TEST(Arch, ValidationCatchesBadDims) {
  AcceleratorConfig config = AcceleratorConfig::crosslight();
  config.conv.units = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AcceleratorConfig::crosslight();
  config.dac_bits = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------- slots

TEST(Slot, FlatRoundTripConv) {
  const BlockDims dims{100, 20, 20};
  for (std::size_t flat : {0u, 1u, 399u, 400u, 20'000u, 39'999u}) {
    const SlotAddress addr = slot_from_flat(dims, BlockKind::kConv, flat);
    EXPECT_EQ(slot_flat_index(dims, addr), flat);
  }
  EXPECT_THROW(slot_from_flat(dims, BlockKind::kConv, 40'000u),
               std::invalid_argument);
}

TEST(Slot, LayoutIsMrFastest) {
  const BlockDims dims{2, 3, 4};
  const SlotAddress a = slot_from_flat(dims, BlockKind::kConv, 0);
  const SlotAddress b = slot_from_flat(dims, BlockKind::kConv, 1);
  EXPECT_EQ(a.unit, b.unit);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(b.mr, a.mr + 1);
  // Crossing a bank boundary.
  const SlotAddress c = slot_from_flat(dims, BlockKind::kConv, 4);
  EXPECT_EQ(c.bank, 1u);
  EXPECT_EQ(c.mr, 0u);
}

TEST(Slot, BankRoundTrip) {
  const BlockDims dims{60, 150, 150};
  for (std::size_t flat : {0u, 149u, 150u, 8'999u}) {
    const BankAddress addr = bank_from_flat(dims, BlockKind::kFc, flat);
    EXPECT_EQ(bank_flat_index(dims, addr), flat);
  }
}

TEST(Slot, BankOfSlotDropsMrIndex) {
  const SlotAddress slot{BlockKind::kFc, 3, 7, 11};
  const BankAddress bank = bank_of_slot(slot);
  EXPECT_EQ(bank.unit, 3u);
  EXPECT_EQ(bank.bank, 7u);
  EXPECT_EQ(bank.block, BlockKind::kFc);
}

TEST(Slot, ToStringIsReadable) {
  const SlotAddress slot{BlockKind::kConv, 1, 2, 3};
  EXPECT_EQ(slot.to_string(), "CONV/u1/b2/m3");
}

// ---------------------------------------------------------------- mapping

nn::Sequential make_mapped_model(std::size_t conv_out = 4,
                                 std::size_t fc_out = 6) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(2, conv_out, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(conv_out * 16, fc_out, rng);
  return model;
}

AcceleratorConfig tiny_accelerator() {
  AcceleratorConfig config = AcceleratorConfig::crosslight();
  config.conv = BlockDims{2, 2, 4};   // 16 slots
  config.fc = BlockDims{1, 3, 10};    // 30 slots
  return config;
}

TEST(Mapping, CountsAndPasses) {
  nn::Sequential model = make_mapped_model();
  const AcceleratorConfig config = tiny_accelerator();
  WeightStationaryMapping mapping(model, config);
  // Conv weights: 4 * 2 * 9 = 72 on 16 slots -> 5 passes.
  EXPECT_EQ(mapping.weight_count(BlockKind::kConv), 72u);
  EXPECT_EQ(mapping.passes(BlockKind::kConv), 5u);
  // FC weights: 6 * 64 = 384 on 30 slots -> 13 passes.
  EXPECT_EQ(mapping.weight_count(BlockKind::kFc), 384u);
  EXPECT_EQ(mapping.passes(BlockKind::kFc), 13u);
}

TEST(Mapping, EveryWeightHasASlotAndInverse) {
  nn::Sequential model = make_mapped_model();
  const AcceleratorConfig config = tiny_accelerator();
  WeightStationaryMapping mapping(model, config);
  for (BlockKind kind : {BlockKind::kConv, BlockKind::kFc}) {
    const std::size_t count = mapping.weight_count(kind);
    for (std::size_t w = 0; w < count; ++w) {
      const SlotAddress slot = mapping.slot_of_weight(kind, w);
      const auto refs = mapping.weights_on_slot(slot);
      bool found = false;
      const WeightRef expected = mapping.weight(kind, w);
      for (const auto& ref : refs) {
        if (ref.param == expected.param && ref.offset == expected.offset) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << to_string(kind) << " weight " << w;
    }
  }
}

TEST(Mapping, SlotServesOneWeightPerPass) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  const SlotAddress slot{BlockKind::kConv, 0, 0, 0};
  const auto refs = mapping.weights_on_slot(slot);
  EXPECT_EQ(refs.size(), mapping.passes(BlockKind::kConv));
  // Distinct weights across passes.
  std::set<std::pair<const void*, std::size_t>> seen;
  for (const auto& ref : refs) {
    seen.insert({static_cast<const void*>(ref.param), ref.offset});
  }
  EXPECT_EQ(seen.size(), refs.size());
}

TEST(Mapping, BankWeightsGroupedByPass) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  const BankAddress bank{BlockKind::kConv, 0, 0};
  const auto groups = mapping.bank_weights(bank);
  EXPECT_EQ(groups.size(), mapping.passes(BlockKind::kConv));
  for (const auto& group : groups) {
    EXPECT_EQ(group.size(), 4u);  // mrs_per_bank
  }
  // Consecutive weights within a pass share the bank (cluster property).
  EXPECT_EQ(groups[0][0].offset + 1, groups[0][1].offset);
}

TEST(Mapping, PartialLastPassHasNullSlots) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  // Conv: 72 weights, 16 slots -> last pass holds 72 - 64 = 8 weights in
  // the first two banks; the last bank of the last pass is empty.
  const BankAddress last_bank{BlockKind::kConv, 1, 1};
  const auto groups = mapping.bank_weights(last_bank);
  EXPECT_EQ(groups.size(), 4u);  // only 4 passes reach this bank
}

TEST(Mapping, ElectronicParamsNeverMapped) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  for (BlockKind kind : {BlockKind::kConv, BlockKind::kFc}) {
    const std::size_t count = mapping.weight_count(kind);
    for (std::size_t w = 0; w < count; ++w) {
      EXPECT_NE(mapping.weight(kind, w).param->kind,
                nn::ParamKind::kElectronic);
    }
  }
}

TEST(Mapping, ScalesTrackAbsMax) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  nn::Param* conv_w = model.params()[0];
  EXPECT_FLOAT_EQ(mapping.scale_of(conv_w), conv_w->value.abs_max());
  conv_w->value[0] = 100.0f;
  mapping.refresh_scales();
  EXPECT_FLOAT_EQ(mapping.scale_of(conv_w), 100.0f);
}

TEST(Mapping, ScaleOfUnmappedParamThrows) {
  nn::Sequential model = make_mapped_model();
  WeightStationaryMapping mapping(model, tiny_accelerator());
  nn::Param unrelated("x", nn::ParamKind::kElectronic, nn::Tensor({1}));
  EXPECT_THROW(mapping.scale_of(&unrelated), std::invalid_argument);
}

// ---------------------------------------------------------------- vdp

TEST(VdpUnit, ComputesMatrixVectorProduct) {
  phot::MrGeometry geometry;
  VdpUnit unit(3, 4, geometry, 1550.0);
  const std::vector<std::vector<double>> weights = {
      {0.5, -0.3, 0.2, 0.7},
      {0.1, 0.9, -0.6, 0.0},
      {-0.2, 0.4, 0.3, -0.8}};
  unit.set_weights(weights);
  const std::vector<double> x = {0.5, 0.25, 1.0, 0.75};
  const std::vector<double> out = unit.multiply(x);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    double ideal = 0;
    for (std::size_t i = 0; i < 4; ++i) ideal += weights[b][i] * x[i];
    EXPECT_NEAR(out[b], ideal, 0.1) << "bank " << b;
  }
}

TEST(VdpUnit, RejectsBadShapes) {
  phot::MrGeometry geometry;
  VdpUnit unit(2, 3, geometry, 1550.0);
  EXPECT_THROW(unit.set_weights({{0.1, 0.2, 0.3}}), std::invalid_argument);
  EXPECT_THROW(unit.multiply({1.0}), std::invalid_argument);
  EXPECT_THROW(unit.bank(5), std::invalid_argument);
}

// ---------------------------------------------------------------- executor

TEST(Executor, ConditioningIsNearlyLossless) {
  nn::Sequential model = make_mapped_model();
  const auto before = nn::snapshot_state(model);
  OnnExecutor executor(tiny_accelerator());
  executor.condition_weights(model);
  const auto params = model.params();
  // 10-bit DAC on [-1,1] x scale: max error = scale / (2^10 - 1) / 2 * 2.
  for (nn::Param* p : params) {
    if (p->kind == nn::ParamKind::kElectronic) continue;
    const float scale = p->value.abs_max();
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      EXPECT_NEAR(p->value[i], before[0].numel() ? p->value[i] : 0.0f,
                  scale);  // sanity: finite
    }
  }
  EXPECT_TRUE(model.forward(nn::Tensor({1, 2, 4, 4}), false).all_finite());
}

TEST(Executor, UnattackedMatchesPureForward) {
  nn::Sequential model = make_mapped_model();
  Rng rng(9);
  nn::Tensor x({4, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const nn::Tensor reference = model.forward(x, false);

  OnnExecutor executor(tiny_accelerator());
  executor.condition_weights(model);
  const nn::Tensor conditioned = executor.forward(model, x);
  // DAC conditioning perturbs logits only slightly.
  EXPECT_LT(nn::max_abs_diff(reference, conditioned),
            0.05f * (1.0f + reference.abs_max()));
}

TEST(Executor, AdcQuantizationBounded) {
  nn::Sequential model = make_mapped_model();
  Rng rng(10);
  nn::Tensor x({2, 2, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  OnnExecutor plain(tiny_accelerator());
  plain.condition_weights(model);
  const nn::Tensor without = plain.forward(model, x);

  ExecutorOptions options;
  options.quantize_activations = true;
  OnnExecutor quantizing(tiny_accelerator(), options);
  const nn::Tensor with = quantizing.forward(model, x);
  EXPECT_GT(nn::max_abs_diff(without, with), 0.0f);  // ADC does something
  EXPECT_LT(nn::max_abs_diff(without, with),
            0.1f * (1.0f + without.abs_max()));      // ...but not much
}

TEST(Executor, EvaluateCountsAccuracy) {
  nn::SynthConfig data_config;
  data_config.count = 20;
  data_config.image_size = 12;
  const nn::Dataset data = nn::synth_digits(data_config);
  Rng rng(11);
  nn::Sequential model;
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(144, 10, rng);
  OnnExecutor executor(tiny_accelerator());
  const double acc = executor.evaluate(model, data);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

// ---------------------------------------------------------------- energy

TEST(Energy, MacCountsLeNet) {
  nn::ModelConfig config;
  auto model = nn::make_cnn1(config);
  const MacCounts macs = count_macs(*model, {1, 1, 28, 28});
  // conv1: 24*24*6*25 = 86400; conv2: 8*8*16*150 = 153600.
  EXPECT_EQ(macs.conv_macs, 86'400u + 153'600u);
  // fc: 256*120 + 120*84 + 84*10 = 41640.
  EXPECT_EQ(macs.fc_macs, 41'640u);
}

TEST(Energy, MacCountsScaleWithBatch) {
  nn::ModelConfig config;
  auto model = nn::make_cnn1(config);
  const MacCounts one = count_macs(*model, {1, 1, 28, 28});
  const MacCounts four = count_macs(*model, {4, 1, 28, 28});
  EXPECT_EQ(four.total(), 4u * one.total());
}

TEST(Energy, ReportIsPositiveAndDecomposes) {
  nn::ModelConfig config;
  auto model = nn::make_cnn1(config);
  const MacCounts macs = count_macs(*model, {1, 1, 28, 28});
  const EnergyReport report =
      estimate_inference(macs, AcceleratorConfig::crosslight());
  EXPECT_GT(report.latency_us, 0.0);
  EXPECT_GT(report.laser_uj, 0.0);
  EXPECT_GT(report.tuning_uj, 0.0);
  EXPECT_GT(report.converter_uj, 0.0);
  EXPECT_GT(report.detector_uj, 0.0);
  EXPECT_NEAR(report.total_uj(),
              report.laser_uj + report.tuning_uj + report.converter_uj +
                  report.detector_uj,
              1e-12);
  EXPECT_GT(report.macs_per_nj(macs.total()), 0.0);
}

TEST(Energy, MoreMacsMoreLatency) {
  nn::ModelConfig config;
  auto model = nn::make_cnn1(config);
  const MacCounts one = count_macs(*model, {1, 1, 28, 28});
  const MacCounts eight = count_macs(*model, {8, 1, 28, 28});
  const AcceleratorConfig accel = AcceleratorConfig::crosslight();
  EXPECT_GT(estimate_inference(eight, accel).latency_us,
            estimate_inference(one, accel).latency_us);
}

}  // namespace
}  // namespace safelight::accel
