// Tests for the observability layer: common/trace (scoped spans, thread
// buffers, Chrome trace-event flush, worker-event ingest), common/metrics
// (histogram bucket geometry, quantiles, snapshot merging, the
// safelight.metrics.v1 JSON schema), and common/log level gating.
//
// Both trace and metrics are process-global registries, so every test
// arms what it needs and ends with reset(). Metric names registered here
// persist for the process lifetime by design (reset() zeroes but never
// destroys, so call sites can cache static references) — tests therefore
// use distinct "t.*" names and never assert registry emptiness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

// ---------------------------------------------------------------- spans

TEST(TraceSpan, DisarmedSpansRecordNothing) {
  trace::reset();
  EXPECT_FALSE(trace::armed());
  {
    trace::Span span("test", "noop");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0).arg("s", std::string("v"));  // no-ops, must not crash
  }
  EXPECT_TRUE(trace::drain().empty());
  EXPECT_EQ(trace::flush(), 0u);  // no output file installed either
}

TEST(TraceSpan, NestedSpansNestWithinTheParentInterval) {
  trace::reset();
  trace::arm_buffering();
  {
    trace::Span outer("test", "outer");
    {
      trace::Span inner("test", "inner");
      inner.arg("score", 2.5).arg("detector", std::string("spc"));
    }
  }
  std::vector<trace::RawEvent> events = trace::drain();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at close, so the inner span lands first.
  const trace::RawEvent& inner = events[0];
  const trace::RawEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.tid, outer.tid);
  // Proper nesting: the child interval sits inside the parent interval.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
  ASSERT_EQ(inner.num_args.size(), 1u);
  EXPECT_EQ(inner.num_args[0].first, "score");
  EXPECT_DOUBLE_EQ(inner.num_args[0].second, 2.5);
  ASSERT_EQ(inner.str_args.size(), 1u);
  EXPECT_EQ(inner.str_args[0].first, "detector");
  EXPECT_EQ(inner.str_args[0].second, "spc");
  trace::reset();
}

TEST(TraceFlush, MergesThreadBuffersIntoOneChromeDocument) {
  TempDir dir("trace_flush");
  const std::string path = dir.path() + "/trace.json";
  trace::reset();
  trace::init(path);
  { trace::Span span("test", "on_main"); }
  std::thread worker([] { trace::Span span("test", "on_worker"); });
  worker.join();
  EXPECT_TRUE(trace::has_output());
  EXPECT_EQ(trace::flush(), 2u);

  const JsonValue doc = JsonValue::parse(read_file_bytes(path));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  std::set<std::uint64_t> span_tids;
  std::size_t span_count = 0;
  std::size_t meta_count = 0;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "X") {
      ++span_count;
      EXPECT_EQ(event.at("pid").as_uint(), 1u);  // local events are pid 1
      EXPECT_GE(event.at("ts").as_number(), 0.0);
      span_tids.insert(event.at("tid").as_uint());
    } else {
      ++meta_count;
      EXPECT_EQ(event.at("name").as_string(), "process_name");
      EXPECT_EQ(ph, "M");
    }
  }
  EXPECT_EQ(span_count, 2u);
  EXPECT_EQ(meta_count, 1u);  // the local "safelight" track
  // The main thread and the helper thread land on distinct tracks.
  EXPECT_EQ(span_tids.size(), 2u);
  // flush() consumed the buffers: a second flush writes an empty document.
  EXPECT_EQ(trace::flush(), 0u);
  trace::reset();
}

TEST(TraceIngest, ForeignEventsLandUnderTheirPid) {
  TempDir dir("trace_ingest");
  const std::string path = dir.path() + "/trace.json";
  trace::reset();
  trace::init(path);
  trace::RawEvent foreign;
  foreign.name = "worker.task";
  foreign.cat = "dist";
  foreign.start_ns = trace::now_ns();
  foreign.dur_ns = 1000;
  foreign.num_args.emplace_back("task", 3.0);
  trace::ingest(7, {foreign});
  trace::set_track_name(7, "worker w5");
  EXPECT_EQ(trace::flush(), 1u);

  const JsonValue doc = JsonValue::parse(read_file_bytes(path));
  bool saw_span = false;
  bool saw_track = false;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() == "X") {
      EXPECT_EQ(event.at("name").as_string(), "worker.task");
      EXPECT_EQ(event.at("pid").as_uint(), 7u);
      EXPECT_DOUBLE_EQ(event.at("args").at("task").as_number(), 3.0);
      saw_span = true;
    } else if (event.at("pid").as_uint() == 7u) {
      EXPECT_EQ(event.at("args").at("name").as_string(), "worker w5");
      saw_track = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_track);
  trace::reset();
}

// ----------------------------------------------------- histogram math

TEST(HistogramMath, BucketIndexInvertsBucketValue) {
  // Every inner bucket's representative (its geometric midpoint) maps back
  // to the bucket it represents.
  for (int i = 1; i < metrics::kTotalBuckets - 1; ++i) {
    EXPECT_EQ(metrics::bucket_index(metrics::bucket_value(i)), i)
        << "bucket " << i << " value " << metrics::bucket_value(i);
  }
  // Underflow: non-positive values, NaN, and anything below 2^-32.
  EXPECT_EQ(metrics::bucket_index(0.0), 0);
  EXPECT_EQ(metrics::bucket_index(-5.0), 0);
  EXPECT_EQ(metrics::bucket_index(std::nan("")), 0);
  EXPECT_EQ(metrics::bucket_index(std::exp2(-40)), 0);
  EXPECT_DOUBLE_EQ(metrics::bucket_value(0), 0.0);
  // Overflow above 2^32.
  EXPECT_EQ(metrics::bucket_index(std::exp2(40)), metrics::kTotalBuckets - 1);
  EXPECT_DOUBLE_EQ(metrics::bucket_value(metrics::kTotalBuckets - 1),
                   std::exp2(32));
  // Monotone in the value.
  EXPECT_LE(metrics::bucket_index(3.0), metrics::bucket_index(3.7));
  EXPECT_LT(metrics::bucket_index(1.0), metrics::bucket_index(100.0));
}

TEST(HistogramMath, QuantilesTrackAKnownDistribution) {
  metrics::reset();
  metrics::arm_collection();
  metrics::Histogram h;
  for (int v = 1; v <= 100; ++v) h.record(static_cast<double>(v));
  const metrics::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_NEAR(snap.sum, 5050.0, 1e-9);
  // 4 buckets/octave carry ~9% relative error; allow 2^0.25 ≈ 19% to keep
  // the bound boundary-proof.
  EXPECT_NEAR(metrics::quantile(snap, 0.50), 50.0, 50.0 * 0.19);
  EXPECT_NEAR(metrics::quantile(snap, 0.95), 95.0, 95.0 * 0.19);
  // Quantiles clamp to the observed range.
  EXPECT_LE(metrics::quantile(snap, 1.0), snap.max);
  EXPECT_GE(metrics::quantile(snap, 0.0), snap.min);

  // A constant distribution is exact: the [min, max] clamp collapses the
  // bucket representative onto the recorded value.
  metrics::Histogram constant;
  for (int i = 0; i < 10; ++i) constant.record(3.25);
  const metrics::HistogramSnapshot cs = constant.snapshot();
  EXPECT_DOUBLE_EQ(metrics::quantile(cs, 0.50), 3.25);
  EXPECT_DOUBLE_EQ(metrics::quantile(cs, 0.99), 3.25);

  // Empty histogram: 0, not NaN.
  EXPECT_DOUBLE_EQ(metrics::quantile(metrics::HistogramSnapshot{}, 0.5), 0.0);
  metrics::reset();
}

TEST(HistogramMath, SnapshotsMergeAdditively) {
  metrics::reset();
  metrics::arm_collection();
  metrics::Histogram a;
  metrics::Histogram b;
  a.record(1.0);
  a.record(2.0);
  b.record(100.0);
  a.merge(b.snapshot());
  const metrics::HistogramSnapshot merged = a.snapshot();
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.min, 1.0);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);
  EXPECT_NEAR(merged.sum, 103.0, 1e-9);
  std::uint64_t bucket_total = 0;
  for (const auto& [index, count] : merged.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, 3u);
  metrics::reset();
}

// ------------------------------------------------------------- metrics

TEST(MetricsArming, DisarmedUpdatesAreDropped) {
  metrics::reset();
  metrics::counter("t.arm.c").add(5);
  metrics::gauge("t.arm.g").set(2.0);
  metrics::histogram("t.arm.h").record(1.0);
  EXPECT_EQ(metrics::counter("t.arm.c").value(), 0u);
  EXPECT_DOUBLE_EQ(metrics::gauge("t.arm.g").value(), 0.0);
  EXPECT_EQ(metrics::histogram("t.arm.h").snapshot().count, 0u);
  metrics::arm_collection();
  metrics::counter("t.arm.c").add(5);
  EXPECT_EQ(metrics::counter("t.arm.c").value(), 5u);
  metrics::reset();  // zeroes, keeps the reference valid
  EXPECT_EQ(metrics::counter("t.arm.c").value(), 0u);
}

TEST(MetricsJson, SchemaIsStable) {
  metrics::reset();
  metrics::arm_collection();
  metrics::counter("t.schema.alpha").add(3);
  metrics::gauge("t.schema.beta").set(1.5);
  metrics::histogram("t.schema.gamma").record(4.0);

  const JsonValue doc = JsonValue::parse(metrics::to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "safelight.metrics.v1");
  EXPECT_EQ(doc.at("counters").at("t.schema.alpha").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("t.schema.beta").as_number(), 1.5);
  // Every histogram carries exactly these fields — bench_report.sh and the
  // docs recipe key on them.
  const auto& hist = doc.at("histograms").at("t.schema.gamma").as_object();
  const std::set<std::string> expected = {"count", "max", "min", "p50",
                                          "p95",   "p99", "sum"};
  std::set<std::string> actual;
  for (const auto& [key, value] : hist) actual.insert(key);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(hist.at("count").as_uint(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("min").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_number(), 4.0);

  // reset() zeroes values but keeps names registered: the schema (the key
  // set) survives, so repeated runs diff cleanly.
  metrics::reset();
  const JsonValue zeroed = JsonValue::parse(metrics::to_json());
  EXPECT_EQ(zeroed.at("counters").at("t.schema.alpha").as_uint(), 0u);
  EXPECT_EQ(zeroed.at("histograms").at("t.schema.gamma").at("count").as_uint(),
            0u);
}

TEST(MetricsJson, WriteJsonHonorsTheOutputPath) {
  TempDir dir("metrics_write");
  metrics::reset();
  EXPECT_FALSE(metrics::write_json());  // disarmed: no file, returns false
  metrics::init(dir.path() + "/m.json");
  EXPECT_TRUE(metrics::has_output());
  metrics::counter("t.file.c").add(1);
  EXPECT_TRUE(metrics::write_json());
  const JsonValue doc =
      JsonValue::parse(read_file_bytes(dir.path() + "/m.json"));
  EXPECT_EQ(doc.at("schema").as_string(), "safelight.metrics.v1");
  EXPECT_EQ(doc.at("counters").at("t.file.c").as_uint(), 1u);
  metrics::reset();
}

TEST(MetricsIngest, FleetSnapshotsAccumulate) {
  metrics::reset();
  metrics::arm_collection();
  metrics::counter("t.fleet.c").add(2);
  metrics::gauge("t.fleet.g").set(1.0);
  metrics::histogram("t.fleet.h").record(10.0);

  // A worker shipping an identical registry doubles counters and histogram
  // counts; the gauge keeps the maximum.
  metrics::ingest(metrics::snapshot());
  metrics::Snapshot after = metrics::snapshot();
  EXPECT_EQ(after.counters.at("t.fleet.c"), 4u);
  EXPECT_EQ(after.histograms.at("t.fleet.h").count, 2u);
  EXPECT_NEAR(after.histograms.at("t.fleet.h").sum, 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(after.gauges.at("t.fleet.g"), 1.0);

  metrics::Snapshot bigger;
  bigger.gauges["t.fleet.g"] = 7.0;
  metrics::ingest(bigger);
  EXPECT_DOUBLE_EQ(metrics::snapshot().gauges.at("t.fleet.g"), 7.0);
  metrics::reset();
}

TEST(MetricsSummary, EveryLineCarriesThePrefix) {
  metrics::reset();
  metrics::arm_collection();
  metrics::counter("t.summary.c").add(1);
  std::istringstream lines(metrics::summary());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[metrics]", 0), 0u) << line;
    ++count;
  }
  EXPECT_GT(count, 0u);
  metrics::reset();
}

// ----------------------------------------------------------------- log

TEST(LogLevel, SetLevelGatesEnabled) {
  log::set_level(log::Level::kWarn);
  EXPECT_TRUE(log::enabled(log::Level::kError));
  EXPECT_TRUE(log::enabled(log::Level::kWarn));
  EXPECT_FALSE(log::enabled(log::Level::kInfo));
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
  // Back to the environment default (info): the historical [dist]/[store]
  // diagnostics stay byte-identical, debug stays hidden.
  ::unsetenv("SAFELIGHT_LOG_LEVEL");
  log::reset();
  EXPECT_TRUE(log::enabled(log::Level::kInfo));
  EXPECT_FALSE(log::enabled(log::Level::kDebug));
}

}  // namespace
}  // namespace safelight
