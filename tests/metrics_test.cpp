// Tests for classification metrics (confusion matrix, collapse diagnosis).
#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/metrics.hpp"
#include "nn/pool.hpp"
#include "nn/synthetic.hpp"

namespace safelight::nn {
namespace {

ConfusionMatrix small_matrix() {
  ConfusionMatrix m(3);
  // truth 0: 2 correct, 1 confused as 1.
  m.record(0, 0);
  m.record(0, 0);
  m.record(0, 1);
  // truth 1: 1 correct.
  m.record(1, 1);
  // truth 2: 2 confused as 0.
  m.record(2, 0);
  m.record(2, 0);
  return m;
}

TEST(ConfusionMatrix, CountsAndTotals) {
  const ConfusionMatrix m = small_matrix();
  EXPECT_EQ(m.total(), 6u);
  EXPECT_EQ(m.count(0, 0), 2u);
  EXPECT_EQ(m.count(0, 1), 1u);
  EXPECT_EQ(m.count(2, 0), 2u);
  EXPECT_EQ(m.count(2, 2), 0u);
}

TEST(ConfusionMatrix, Accuracy) {
  const ConfusionMatrix m = small_matrix();
  EXPECT_NEAR(m.accuracy(), 3.0 / 6.0, 1e-12);
}

TEST(ConfusionMatrix, RecallPerClass) {
  const ConfusionMatrix m = small_matrix();
  EXPECT_NEAR(m.recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall(1), 1.0, 1e-12);
  EXPECT_NEAR(m.recall(2), 0.0, 1e-12);
}

TEST(ConfusionMatrix, PrecisionPerClass) {
  const ConfusionMatrix m = small_matrix();
  EXPECT_NEAR(m.precision(0), 2.0 / 4.0, 1e-12);  // 2 of 4 predicted-0
  EXPECT_NEAR(m.precision(1), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(m.precision(2), 0.0, 1e-12);  // never predicted
}

TEST(ConfusionMatrix, BalancedAccuracy) {
  const ConfusionMatrix m = small_matrix();
  EXPECT_NEAR(m.balanced_accuracy(), (2.0 / 3.0 + 1.0 + 0.0) / 3.0, 1e-12);
}

TEST(ConfusionMatrix, BalancedAccuracyIgnoresUnseenClasses) {
  ConfusionMatrix m(4);
  m.record(0, 0);
  m.record(1, 1);
  EXPECT_NEAR(m.balanced_accuracy(), 1.0, 1e-12);  // classes 2,3 unseen
}

TEST(ConfusionMatrix, PredictionCollapseDetectsDegenerateModel) {
  ConfusionMatrix uniform(2);
  uniform.record(0, 0);
  uniform.record(1, 1);
  EXPECT_NEAR(uniform.prediction_collapse(), 0.5, 1e-12);

  ConfusionMatrix collapsed(2);
  for (int i = 0; i < 10; ++i) collapsed.record(i % 2, 0);
  EXPECT_NEAR(collapsed.prediction_collapse(), 1.0, 1e-12);
}

TEST(ConfusionMatrix, EmptyMatrixSafeDefaults) {
  ConfusionMatrix m(3);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.balanced_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.prediction_collapse(), 0.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.0);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.record(2, 0), std::invalid_argument);
  EXPECT_THROW(m.record(0, -1), std::invalid_argument);
  EXPECT_THROW(m.count(0, 5), std::invalid_argument);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, RenderContainsAllRows) {
  const std::string out = small_matrix().render();
  EXPECT_NE(out.find("truth\\pred"), std::string::npos);
  // 1 header + 3 data rows.
  std::size_t lines = 0;
  for (char ch : out) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(ConfusionMatrix, FromModelMatchesManualEvaluation) {
  SynthConfig config;
  config.count = 50;
  config.image_size = 12;
  const Dataset data = synth_digits(config);
  Rng rng(3);
  Sequential model;
  model.emplace<Flatten>();
  model.emplace<Linear>(144, 10, rng);
  const ConfusionMatrix m = confusion_matrix(model, data);
  EXPECT_EQ(m.total(), 50u);
  EXPECT_NEAR(m.accuracy(), model.accuracy(data.images, data.labels), 1e-12);
}

}  // namespace
}  // namespace safelight::nn
