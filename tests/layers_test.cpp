// Layer forward/backward tests, including numerical gradient checks for
// every differentiable layer (the core correctness guarantee of the
// training stack).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"

namespace safelight::nn {
namespace {

Tensor random_tensor(const Shape& shape, Rng& rng, double lo = -1.0,
                     double hi = 1.0) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

/// L(x) = sum(forward(x) .* projection); scalar loss for gradient checks.
double scalar_loss(Layer& layer, const Tensor& x, const Tensor& projection) {
  const Tensor out = layer.forward(x, /*train=*/true);
  EXPECT_EQ(out.shape(), projection.shape());
  double loss = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    loss += static_cast<double>(out[i]) * projection[i];
  }
  return loss;
}

/// Verifies analytic input- and parameter-gradients against central
/// differences. eps/tol tuned for float32 arithmetic.
void check_gradients(Layer& layer, const Tensor& x, Rng& rng,
                     float eps = 1e-2f, float tol = 2e-2f) {
  const Tensor probe = layer.forward(x, /*train=*/true);
  const Tensor projection = random_tensor(probe.shape(), rng);

  // Analytic gradients.
  layer.zero_grad();
  (void)scalar_loss(layer, x, projection);
  const Tensor grad_in = layer.backward(projection);
  ASSERT_EQ(grad_in.shape(), x.shape());

  auto close = [&](double analytic, double numeric, const std::string& where) {
    const double scale = 1.0 + std::abs(analytic) + std::abs(numeric);
    EXPECT_NEAR(analytic, numeric, tol * scale) << where;
  };

  // Input gradient (sample a subset for speed on larger tensors).
  Tensor xp = x;
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 24);
  for (std::size_t i = 0; i < x.numel(); i += stride) {
    const float original = xp[i];
    xp[i] = original + eps;
    const double up = scalar_loss(layer, xp, projection);
    xp[i] = original - eps;
    const double down = scalar_loss(layer, xp, projection);
    xp[i] = original;
    close(grad_in[i], (up - down) / (2.0 * eps),
          "input grad at " + std::to_string(i));
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    const std::size_t pstride = std::max<std::size_t>(1, p->value.numel() / 16);
    for (std::size_t i = 0; i < p->value.numel(); i += pstride) {
      const float original = p->value[i];
      p->value[i] = original + eps;
      const double up = scalar_loss(layer, x, projection);
      p->value[i] = original - eps;
      const double down = scalar_loss(layer, x, projection);
      p->value[i] = original;
      // Re-establish caches for the analytic gradient state.
      close(p->grad[i], (up - down) / (2.0 * eps),
            p->name + " grad at " + std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------- conv

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  EXPECT_EQ(conv.output_shape({2, 3, 8, 8}), (Shape{2, 8, 8, 8}));
  Conv2d strided(3, 4, 3, 2, 1, rng);
  EXPECT_EQ(strided.output_shape({1, 3, 8, 8}), (Shape{1, 4, 4, 4}));
  Conv2d valid(1, 6, 5, 1, 0, rng);
  EXPECT_EQ(valid.output_shape({1, 1, 28, 28}), (Shape{1, 6, 24, 24}));
}

TEST(Conv2d, RejectsWrongInput) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  EXPECT_THROW(conv.output_shape({2, 4, 8, 8}), std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor({2, 3, 8}), false), std::invalid_argument);
}

TEST(Conv2d, KnownValue) {
  // Single 2x2 all-ones kernel over a 2x2 image = sum of pixels.
  Rng rng(1);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  conv.weight().value.fill(1.0f);
  conv.bias().value.fill(0.5f);
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(x, false);
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 10.5f);
}

TEST(Conv2d, GradientCheck) {
  Rng rng(42);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  check_gradients(conv, random_tensor({2, 2, 5, 5}, rng), rng);
}

TEST(Conv2d, GradientCheckStridedNoPad) {
  Rng rng(43);
  Conv2d conv(3, 2, 3, 2, 0, rng);
  check_gradients(conv, random_tensor({2, 3, 7, 7}, rng), rng);
}

TEST(Conv2d, GradientCheckNoBias) {
  Rng rng(44);
  Conv2d conv(2, 2, 3, 1, 1, rng, /*bias=*/false);
  EXPECT_EQ(conv.params().size(), 1u);
  check_gradients(conv, random_tensor({1, 2, 4, 4}, rng), rng);
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(1);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 4, 4})), std::invalid_argument);
}

TEST(Conv2d, ParamKindsForMapping) {
  Rng rng(1);
  Conv2d conv(1, 2, 3, 1, 1, rng);
  EXPECT_EQ(conv.params()[0]->kind, ParamKind::kConvWeight);
  EXPECT_EQ(conv.params()[1]->kind, ParamKind::kElectronic);  // bias
}

// ---------------------------------------------------------------- linear

TEST(Linear, KnownValue) {
  Rng rng(1);
  Linear fc(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  fc.bias().value = Tensor({2}, {0.5f, -0.5f});
  Tensor x({1, 2}, {1, 1});
  const Tensor out = fc.forward(x, false);
  EXPECT_FLOAT_EQ(out[0], 3.5f);
  EXPECT_FLOAT_EQ(out[1], 6.5f);
}

TEST(Linear, GradientCheck) {
  Rng rng(45);
  Linear fc(6, 4, rng);
  check_gradients(fc, random_tensor({3, 6}, rng), rng);
}

TEST(Linear, ParamKindsForMapping) {
  Rng rng(1);
  Linear fc(3, 3, rng);
  EXPECT_EQ(fc.params()[0]->kind, ParamKind::kLinearWeight);
  EXPECT_EQ(fc.params()[1]->kind, ParamKind::kElectronic);
}

TEST(Linear, RejectsWrongFeatureCount) {
  Rng rng(1);
  Linear fc(3, 2, rng);
  EXPECT_THROW(fc.forward(Tensor({1, 4}), false), std::invalid_argument);
}

// ---------------------------------------------------------------- relu

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::from({-1, 0, 2});
  const Tensor out = relu.forward(x, false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
}

TEST(ReLU, GradientCheck) {
  Rng rng(46);
  ReLU relu;
  check_gradients(relu, random_tensor({2, 10}, rng), rng);
}

TEST(ReLU, BackwardMasksGradient) {
  ReLU relu;
  Tensor x = Tensor::from({-1, 3});
  relu.forward(x, true);
  const Tensor g = relu.backward(Tensor::from({5, 5}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 5.0f);
}

TEST(Softmax2d, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor p = softmax2d(logits);
  for (std::size_t n = 0; n < 2; ++n) {
    double sum = 0;
    for (std::size_t c = 0; c < 3; ++c) sum += p[n * 3 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_GT(p[2], p[0]);  // monotone in logits
}

TEST(Softmax2d, NumericallyStableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 999.0f});
  const Tensor p = softmax2d(logits);
  EXPECT_TRUE(p.all_finite());
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-5);
}

// ---------------------------------------------------------------- pool

TEST(MaxPool2d, ForwardSelectsMax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  const Tensor out = pool.forward(x, false);
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 2, 2}, {1, 5, 3, 2});
  pool.forward(x, true);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {7}));
  EXPECT_FLOAT_EQ(g[1], 7.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool2d, GradientCheck) {
  Rng rng(47);
  MaxPool2d pool(2);
  check_gradients(pool, random_tensor({2, 3, 4, 4}, rng), rng);
}

TEST(MaxPool2d, OddSizesTruncate) {
  MaxPool2d pool(2);
  EXPECT_EQ(pool.output_shape({1, 1, 5, 7}), (Shape{1, 1, 2, 3}));
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool pool;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor out = pool.forward(x, false);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
}

TEST(GlobalAvgPool, GradientCheck) {
  Rng rng(48);
  GlobalAvgPool pool;
  check_gradients(pool, random_tensor({2, 3, 3, 3}, rng), rng);
}

TEST(Flatten, RoundTrip) {
  Rng rng(49);
  Flatten flatten;
  const Tensor x = random_tensor({2, 3, 4, 4}, rng);
  const Tensor out = flatten.forward(x, true);
  EXPECT_EQ(out.shape(), (Shape{2, 48}));
  const Tensor g = flatten.backward(out);
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_FLOAT_EQ(max_abs_diff(g, x), 0.0f);
}

// ---------------------------------------------------------------- batchnorm

TEST(BatchNorm2d, NormalizesTrainBatch) {
  BatchNorm2d bn(2);
  Rng rng(50);
  const Tensor x = random_tensor({4, 2, 3, 3}, rng, -2.0, 5.0);
  const Tensor out = bn.forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0, sq = 0;
    std::size_t count = 0;
    for (std::size_t n = 0; n < 4; ++n) {
      for (std::size_t i = 0; i < 9; ++i) {
        const float v = out[(n * 2 + c) * 9 + i];
        sum += v;
        sq += v * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(51);
  // Train on shifted data to move the running stats.
  for (int step = 0; step < 50; ++step) {
    bn.forward(random_tensor({8, 1, 2, 2}, rng, 4.0, 6.0), true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0f, 0.3f);
  // Eval output on the same distribution should be ~N(0,1).
  const Tensor out = bn.forward(random_tensor({8, 1, 2, 2}, rng, 4.0, 6.0),
                                false);
  EXPECT_LT(std::abs(out.sum() / static_cast<float>(out.numel())), 0.5f);
}

TEST(BatchNorm2d, GradientCheck) {
  Rng rng(52);
  BatchNorm2d bn(3);
  check_gradients(bn, random_tensor({3, 3, 2, 2}, rng), rng, 1e-2f, 4e-2f);
}

TEST(BatchNorm2d, StateTensorsExposed) {
  BatchNorm2d bn(4);
  EXPECT_EQ(bn.state_tensors().size(), 2u);
  EXPECT_EQ(bn.params().size(), 2u);
}

// ---------------------------------------------------------------- dropout

TEST(Dropout, IdentityAtEval) {
  Dropout dropout(0.5f, 7);
  Rng rng(53);
  const Tensor x = random_tensor({2, 10}, rng);
  const Tensor out = dropout.forward(x, false);
  EXPECT_FLOAT_EQ(max_abs_diff(out, x), 0.0f);
}

TEST(Dropout, ZeroProbabilityIsIdentityInTrain) {
  Dropout dropout(0.0f, 7);
  Rng rng(54);
  const Tensor x = random_tensor({2, 10}, rng);
  const Tensor out = dropout.forward(x, true);
  EXPECT_FLOAT_EQ(max_abs_diff(out, x), 0.0f);
}

TEST(Dropout, DropsAndRescales) {
  Dropout dropout(0.5f, 7);
  Tensor x = Tensor::full({1, 1000}, 1.0f);
  const Tensor out = dropout.forward(x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 60.0);
}

TEST(Dropout, BackwardMatchesForwardMask) {
  Dropout dropout(0.3f, 11);
  Tensor x = Tensor::full({1, 100}, 1.0f);
  const Tensor out = dropout.forward(x, true);
  const Tensor g = dropout.backward(Tensor::full({1, 100}, 1.0f));
  for (std::size_t i = 0; i < 100; ++i) {
    if (out[i] == 0.0f) {
      EXPECT_FLOAT_EQ(g[i], 0.0f);
    } else {
      EXPECT_GT(g[i], 1.0f);
    }
  }
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
}

// ---------------------------------------------------------------- residual

TEST(BasicBlock, IdentityShapePreserved) {
  Rng rng(60);
  BasicBlock block(4, 4, 1, rng);
  EXPECT_EQ(block.output_shape({2, 4, 8, 8}), (Shape{2, 4, 8, 8}));
}

TEST(BasicBlock, DownsampleShape) {
  Rng rng(61);
  BasicBlock block(4, 8, 2, rng);
  EXPECT_EQ(block.output_shape({2, 4, 8, 8}), (Shape{2, 8, 4, 4}));
  EXPECT_EQ(block.output_shape({1, 4, 7, 7}), (Shape{1, 8, 4, 4}));
}

TEST(BasicBlock, OptionARequiresWidening) {
  Rng rng(62);
  EXPECT_THROW(BasicBlock(8, 4, 1, rng), std::invalid_argument);
}

TEST(BasicBlock, ParameterInventory) {
  Rng rng(63);
  BasicBlock block(4, 8, 2, rng);
  // Two conv weights (no biases) + two BN gamma/beta pairs = 6 params,
  // and the shortcut adds none (option A is parameter-free).
  EXPECT_EQ(block.params().size(), 6u);
  EXPECT_EQ(block.state_tensors().size(), 4u);
}

TEST(BasicBlock, GradientCheckIdentity) {
  Rng rng(64);
  BasicBlock block(3, 3, 1, rng);
  check_gradients(block, random_tensor({2, 3, 4, 4}, rng), rng, 1e-2f, 5e-2f);
}

TEST(BasicBlock, GradientCheckDownsample) {
  // Element-wise finite differences are unreliable here: the downsample
  // path pushes many activations across ReLU kinks, giving O(eps)
  // subgradient error. Check the directional derivative instead and assert
  // it converges toward the analytic value as eps shrinks.
  Rng rng(65);
  BasicBlock block(2, 4, 2, rng);
  const Tensor x = random_tensor({2, 2, 6, 6}, rng);
  const Tensor probe = block.forward(x, true);
  const Tensor projection = random_tensor(probe.shape(), rng);

  block.zero_grad();
  (void)scalar_loss(block, x, projection);
  const Tensor grad_in = block.backward(projection);

  std::vector<float> dir_x(x.numel());
  for (auto& v : dir_x) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<std::vector<float>> dir_p;
  for (Param* p : block.params()) {
    std::vector<float> d(p->value.numel());
    for (auto& v : d) v = static_cast<float>(rng.uniform(-1, 1));
    dir_p.push_back(std::move(d));
  }
  double analytic = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) analytic += grad_in[i] * dir_x[i];
  {
    std::size_t k = 0;
    for (Param* p : block.params()) {
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        analytic += p->grad[i] * dir_p[k][i];
      }
      ++k;
    }
  }

  auto directional = [&](double eps) {
    auto loss_at = [&](double sign) {
      Tensor xs = x;
      for (std::size_t i = 0; i < x.numel(); ++i) {
        xs[i] += static_cast<float>(sign * eps * dir_x[i]);
      }
      std::vector<Tensor> saved;
      for (Param* p : block.params()) saved.push_back(p->value);
      std::size_t k = 0;
      for (Param* p : block.params()) {
        for (std::size_t i = 0; i < p->value.numel(); ++i) {
          p->value[i] += static_cast<float>(sign * eps * dir_p[k][i]);
        }
        ++k;
      }
      const double loss = scalar_loss(block, xs, projection);
      std::size_t j = 0;
      for (Param* p : block.params()) p->value = saved[j++];
      return loss;
    };
    return (loss_at(1.0) - loss_at(-1.0)) / (2.0 * eps);
  };

  const double err_coarse =
      std::abs(directional(1e-2) - analytic) / (std::abs(analytic) + 1e-9);
  const double err_fine =
      std::abs(directional(2e-3) - analytic) / (std::abs(analytic) + 1e-9);
  EXPECT_LT(err_fine, 0.06);
  EXPECT_LT(err_fine, err_coarse + 1e-6);  // converging toward analytic
}

// ---------------------------------------------------------------- sequential

TEST(Sequential, ForwardChainsLayers) {
  Rng rng(70);
  Sequential model;
  model.emplace<Linear>(4, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Linear>(8, 3, rng);
  const Tensor out = model.forward(random_tensor({2, 4}, rng), false);
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  EXPECT_EQ(model.output_shape({2, 4}), (Shape{2, 3}));
}

TEST(Sequential, GradientCheckComposite) {
  Rng rng(71);
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Flatten>();
  model.emplace<Linear>(2 * 2 * 2, 3, rng);
  check_gradients(model, random_tensor({2, 1, 4, 4}, rng), rng, 1e-2f, 4e-2f);
}

TEST(Sequential, ParamAggregation) {
  Rng rng(72);
  Sequential model;
  model.emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  model.emplace<BatchNorm2d>(2);
  model.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(model.params().size(), 6u);  // conv w+b, bn g+b, fc w+b
  EXPECT_EQ(model.state_tensors().size(), 2u);
  EXPECT_GT(model.num_parameters(), 0u);
}

TEST(Sequential, PredictArgmax) {
  Rng rng(73);
  Sequential model;
  auto& fc = model.emplace<Linear>(2, 2, rng);
  fc.weight().value = Tensor({2, 2}, {1, 0, 0, 1});
  fc.bias().value.fill(0.0f);
  Tensor x({2, 2}, {3, 1, 0, 5});
  const auto preds = model.predict(x);
  EXPECT_EQ(preds[0], 0);
  EXPECT_EQ(preds[1], 1);
  EXPECT_DOUBLE_EQ(model.accuracy(x, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(model.accuracy(x, {1, 1}), 0.5);
}

TEST(Sequential, SummaryListsLayers) {
  Rng rng(74);
  Sequential model;
  model.emplace<Linear>(2, 2, rng);
  const std::string s = model.summary();
  EXPECT_NE(s.find("Linear(2->2)"), std::string::npos);
}

TEST(Sequential, LayerAccessBoundsChecked) {
  Sequential model;
  EXPECT_THROW(model.layer(0), std::invalid_argument);
}

}  // namespace
}  // namespace safelight::nn
