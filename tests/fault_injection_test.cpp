// Crash-consistency harness: pulls the plug at every named fault point of
// the `safelight` CLI's durable-write paths and proves the resume contract.
//
// For each point the harness spawns a child `safelight run` armed with
// --fault-mode run_length --fault-n 1 focused on that point, asserts the
// child died with fault::kPlugPulledExitCode (a simulated power cut via
// std::_Exit — no destructors, no flushing), reruns the identical command
// uninterrupted, and asserts the resumed run's CSV/JSON outputs are
// bitwise-identical to a never-crashed reference run. A counting run
// (independent mode, probability 0) first enumerates the live
// instrumentation surface, so a fault point that silently stops being
// reached fails the suite ("no dead instrumentation").
//
// The JSONL mirror point (store.jsonl.append) is not reachable through any
// registered experiment, so it is exercised in-process via fork(): the
// child tears a mirror record mid-write, the parent proves the reopened
// store repairs the tail and keeps appending complete records.
//
// These tests run child processes and whole (tiny) sweeps; they carry the
// `fault` ctest label and stay out of the unit shard. See docs/testing.md.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/result_store.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

/// Every fault point a tiny `safelight run susceptibility --json` must hit.
/// Keep in sync with the fault-point table in docs/testing.md; the counting
/// run asserts equality in BOTH directions, so adding a ptp() site to a
/// CLI-reachable durable write means adding it here (and a removal or a
/// dead point fails the suite).
const std::set<std::string> kCliReachablePoints = {
    "store.csv.create",      "store.csv.append",   "store.csv.flush",
    "zoo.entry.train_save",  "nn.serialize.tmp_write",
    "nn.serialize.rename",   "nn.serialize.committed",
    "out.csv.create",        "out.csv.row",        "cli.json.write",
};

struct CliResult {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A crashed or wedged child must never hang the whole suite; everything a
/// fault test spawns waits at most this long before a SIGKILL + diagnosis.
constexpr double kChildTimeoutSeconds = 120.0;

/// Runs the real CLI binary as a child process on the tiniest deterministic
/// experiment (susceptibility, cnn1, tiny scale, 1 seed, 1 thread), with
/// zoo and output directories under `dir`. `extra` appends whitespace-
/// separated flag text (e.g. fault flags); `env_prefix` holds whitespace-
/// separated KEY=value environment assignments. The wait is bounded
/// (kChildTimeoutSeconds): a hung child is SIGKILLed and reported with its
/// captured output instead of wedging ctest.
CliResult run_cli(const std::string& dir, const std::string& label,
                  const std::string& extra = "",
                  const std::string& env_prefix = "") {
  std::vector<std::string> argv = {
      SAFELIGHT_CLI_BIN, "run",   "susceptibility",
      "--model",         "cnn1",  "--scale",
      "tiny",            "--seeds", "1",
      "--threads",       "1",     "--zoo",
      dir + "/zoo",      "--out", dir + "/out",
      "--json"};
  std::istringstream extra_in(extra);
  for (std::string token; extra_in >> token;) argv.push_back(token);
  std::vector<std::string> env;
  std::istringstream env_in(env_prefix);
  for (std::string token; env_in >> token;) env.push_back(token);

  const ProcessResult proc =
      run_process(argv, env, dir, kChildTimeoutSeconds);
  CliResult result;
  result.exit_code = proc.timed_out ? -1 : proc.exit_code;
  result.stdout_text = proc.stdout_text;
  result.stderr_text = proc.stderr_text;
  if (proc.timed_out) {
    result.stderr_text +=
        "\n[test] child '" + label + "' exceeded " +
        std::to_string(kChildTimeoutSeconds) +
        "s and was SIGKILLed; captured output above";
  }
  return result;
}

/// Parses the per-point hit counters out of fault::report() lines on
/// stderr: "[fault]   <point> hits=<n>".
std::map<std::string, std::uint64_t> parse_hit_counters(
    const std::string& stderr_text) {
  std::map<std::string, std::uint64_t> hits;
  std::istringstream in(stderr_text);
  std::string line;
  const std::string prefix = "[fault]   ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t eq = line.rfind(" hits=");
    if (eq == std::string::npos) continue;
    const std::string point = line.substr(prefix.size(), eq - prefix.size());
    hits[point] = std::stoull(line.substr(eq + 6));
  }
  return hits;
}

/// The durable artifacts a run leaves in `<dir>/out`, keyed by file name.
std::map<std::string, std::string> output_bytes(const std::string& dir) {
  return {
      {"fig7_susceptibility.csv",
       read_file(dir + "/out/fig7_susceptibility.csv")},
      {"susceptibility_cnn1.json",
       read_file(dir + "/out/susceptibility_cnn1.json")},
  };
}

/// A counting run: armed (so every ptp() site reports) but with plug
/// probability zero, so nothing ever fires and the run completes.
CliResult counting_run(const std::string& dir, const std::string& label) {
  return run_cli(dir, label, "--fault-mode independent");
}

TEST(FaultInjection, CountingRunEnumeratesEveryLivePoint) {
  TempDir dir("fault_counting");
  const CliResult counting = counting_run(dir.path(), "counting");
  ASSERT_EQ(counting.exit_code, 0) << counting.stderr_text;
  const auto hits = parse_hit_counters(counting.stderr_text);

  std::set<std::string> seen;
  for (const auto& [point, count] : hits) {
    EXPECT_GE(count, 1u) << "reported point with zero hits: " << point;
    seen.insert(point);
  }
  // Exact equality both ways: a missing point is dead instrumentation, an
  // extra point is an undocumented durable write.
  EXPECT_EQ(seen, kCliReachablePoints) << counting.stderr_text;
}

TEST(FaultInjection, EveryPointCrashThenResumeIsBitwiseIdentical) {
  TempDir ref_dir("fault_reference");
  const CliResult reference = run_cli(ref_dir.path(), "reference");
  ASSERT_EQ(reference.exit_code, 0) << reference.stderr_text;
  const auto reference_outputs = output_bytes(ref_dir.path());
  for (const auto& [file, bytes] : reference_outputs) {
    ASSERT_FALSE(bytes.empty()) << "reference run produced no " << file;
  }

  for (const std::string& point : kCliReachablePoints) {
    SCOPED_TRACE("fault point: " + point);
    TempDir dir("fault_point");

    const CliResult crash = run_cli(
        dir.path(), "crash",
        "--fault-mode run_length --fault-point " + point + " --fault-n 1");
    EXPECT_EQ(crash.exit_code, fault::kPlugPulledExitCode)
        << crash.stderr_text;
    EXPECT_NE(crash.stderr_text.find("pulling the plug at '" + point + "'"),
              std::string::npos)
        << crash.stderr_text;

    const CliResult resume = run_cli(dir.path(), "resume");
    ASSERT_EQ(resume.exit_code, 0) << resume.stderr_text;
    EXPECT_EQ(output_bytes(dir.path()), reference_outputs);
  }
}

TEST(FaultInjection, MidSweepCrashResumesWithoutReevaluating) {
  // Count how often the store append point fires in a full run, then crash
  // halfway through the sweep rather than on the first row.
  TempDir count_dir("fault_midsweep_count");
  const CliResult counting = counting_run(count_dir.path(), "counting");
  ASSERT_EQ(counting.exit_code, 0) << counting.stderr_text;
  const auto hits = parse_hit_counters(counting.stderr_text);
  ASSERT_TRUE(hits.count("store.csv.append"));
  const std::uint64_t appends = hits.at("store.csv.append");
  ASSERT_GE(appends, 2u) << "sweep too small for a mid-run crash";
  const std::uint64_t crash_at = appends / 2 + 1;

  TempDir dir("fault_midsweep");
  const CliResult crash =
      run_cli(dir.path(), "crash",
              "--fault-mode run_length --fault-point store.csv.append "
              "--fault-n " +
                  std::to_string(crash_at));
  ASSERT_EQ(crash.exit_code, fault::kPlugPulledExitCode) << crash.stderr_text;

  // The crashed run left a torn final CSV row (key without value); the
  // resumed run must load the completed prefix, finish the sweep, and land
  // on the same bytes as the uninterrupted reference.
  const CliResult resume = run_cli(dir.path(), "resume");
  ASSERT_EQ(resume.exit_code, 0) << resume.stderr_text;
  EXPECT_EQ(output_bytes(dir.path()), output_bytes(count_dir.path()));
}

TEST(FaultInjection, UniformModeIsDeterministicUnderOneSeed) {
  // uniform draws the crash hit from [1, n] at init time; the same
  // SAFELIGHT_FAULT_SEED must reproduce the identical crash site.
  const std::string flags =
      "--fault-mode uniform --fault-point store.csv.append --fault-n 3";
  auto plug_line = [](const std::string& stderr_text) {
    const std::size_t begin = stderr_text.find("[fault] pulling the plug");
    if (begin == std::string::npos) return std::string();
    const std::size_t end = stderr_text.find('\n', begin);
    return stderr_text.substr(begin, end - begin);
  };

  TempDir dir_a("fault_uniform_a");
  TempDir dir_b("fault_uniform_b");
  const CliResult a =
      run_cli(dir_a.path(), "crash", flags, "SAFELIGHT_FAULT_SEED=7");
  const CliResult b =
      run_cli(dir_b.path(), "crash", flags, "SAFELIGHT_FAULT_SEED=7");
  ASSERT_EQ(a.exit_code, fault::kPlugPulledExitCode) << a.stderr_text;
  ASSERT_EQ(b.exit_code, fault::kPlugPulledExitCode) << b.stderr_text;
  ASSERT_FALSE(plug_line(a.stderr_text).empty()) << a.stderr_text;
  EXPECT_EQ(plug_line(a.stderr_text), plug_line(b.stderr_text));
}

TEST(FaultInjection, TornJsonlMirrorIsRepairedOnReopen) {
  // store.jsonl.append is unreachable through the CLI (no experiment
  // streams the mirror), so tear it in a forked child instead: same
  // _Exit-based power cut, same resume proof, no CLI in the loop.
  TempDir dir("fault_jsonl");
  const std::string csv = dir.path() + "/store.csv";
  const std::string jsonl = dir.path() + "/store.jsonl";

  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    fault::FaultConfig config;
    config.mode = fault::Mode::kRunLength;
    config.point = "store.jsonl.append";
    config.run_length = 2;
    fault::init(config);
    core::ResultStore store(csv, jsonl);
    store.put("alpha", 0.5);
    store.put("beta", 0.25);  // plug pulled mid-record: never returns
    std::_Exit(1);            // reaching this means the point never fired
  }
  int status = 0;
  ASSERT_TRUE(wait_with_timeout(child, kChildTimeoutSeconds, &status))
      << "forked child hung and was SIGKILLed";
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), fault::kPlugPulledExitCode);

  // The CSV row for beta was already durable; the mirror record tore after
  // its key prefix.
  const std::string torn = read_file(jsonl);
  EXPECT_NE(torn.find("{\"key\":\"beta\","), std::string::npos) << torn;
  EXPECT_NE(torn.back(), '\n') << torn;

  // Reopen: both entries load from the CSV, the torn mirror tail is
  // truncated away, and the next append produces a complete record instead
  // of merging into the tear.
  core::ResultStore resumed(csv, jsonl);
  EXPECT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed.lookup("alpha"), 0.5);
  EXPECT_EQ(resumed.lookup("beta"), 0.25);
  resumed.put("gamma", 0.75);
  EXPECT_EQ(read_file(jsonl),
            "{\"key\":\"alpha\",\"accuracy\":0.5}\n"
            "{\"key\":\"gamma\",\"accuracy\":0.75}\n");
}

}  // namespace
}  // namespace safelight
