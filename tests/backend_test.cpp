// Compute-backend registry contract (nn/backend.hpp): registration order,
// name resolution through config precedence, the CLI error path for a bogus
// --backend, and the kernel fingerprint that conforming variants must share.
// The bitwise per-variant kernel matrix lives in gemm_equivalence_test.cpp;
// this file covers the dispatch machinery around it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "cli/cli.hpp"
#include "common/config.hpp"
#include "nn/backend.hpp"

namespace safelight::nn::backend {
namespace {

TEST(BackendRegistry, ScalarIsAlwaysRegisteredAndSupported) {
  const auto& backends = registered();
  ASSERT_FALSE(backends.empty());
  const ComputeBackend* scalar = nullptr;
  for (const ComputeBackend* backend : backends) {
    if (std::string(backend->name()) == "scalar") scalar = backend;
  }
  ASSERT_NE(scalar, nullptr) << "registered: " << registered_names();
  // The portable baseline must run anywhere — it is the SIGILL fix.
  EXPECT_TRUE(scalar->supported());
  EXPECT_EQ(scalar->priority(), 0);
}

TEST(BackendRegistry, RegisteredIsSortedByDescendingPriority) {
  const auto& backends = registered();
  for (std::size_t i = 1; i < backends.size(); ++i) {
    EXPECT_GT(backends[i - 1]->priority(), backends[i]->priority())
        << backends[i - 1]->name() << " vs " << backends[i]->name();
  }
  // "scalar" is the fallback, so it must sort last.
  EXPECT_STREQ(backends.back()->name(), "scalar");
}

TEST(BackendRegistry, AutoResolvesToBestSupportedVariant) {
  const ComputeBackend& picked = resolve("auto");
  EXPECT_TRUE(picked.supported());
  // Nothing supported may outrank the auto pick.
  for (const ComputeBackend* backend : registered()) {
    if (backend->supported()) {
      EXPECT_LE(backend->priority(), picked.priority()) << backend->name();
    }
  }
  // "" is the config default spelling of auto.
  EXPECT_EQ(&resolve(""), &picked);
}

TEST(BackendRegistry, UnknownNameThrowsListingTheVariants) {
  try {
    resolve("bogus");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    // Actionable: the message names every valid choice.
    EXPECT_NE(what.find("auto"), std::string::npos) << what;
    EXPECT_NE(what.find("scalar"), std::string::npos) << what;
  }
}

TEST(BackendRegistry, ScopedBackendForcesActiveAndRestores) {
  const ComputeBackend& scalar = resolve("scalar");
  const ComputeBackend& before = active();
  {
    ScopedBackend forced(scalar);
    EXPECT_EQ(&active(), &scalar);
  }
  EXPECT_EQ(&active(), &before);
}

TEST(BackendRegistry, ConfigPrecedenceSelectsActiveBackend) {
  {
    // CLI-style override beats whatever the environment says.
    config::Overrides cli;
    cli.backend = "scalar";
    config::ScopedOverrides guard(cli);
    invalidate_cache();
    EXPECT_STREQ(active().name(), "scalar");
  }
  invalidate_cache();  // drop the forced resolution now the override is gone
}

TEST(BackendRegistry, KernelFingerprintIdenticalAcrossSupportedVariants) {
  // The numerics contract, digested: every conforming variant computes the
  // probe problem bit for bit identically, so one fingerprint rules the
  // whole registry. This is what makes the distributed handshake mean
  // "different fingerprint == genuinely different math".
  const std::string expected = kernel_fingerprint(resolve("scalar"));
  EXPECT_EQ(expected.size(), 16u);
  for (const ComputeBackend* backend : registered()) {
    if (!backend->supported()) continue;
    EXPECT_EQ(kernel_fingerprint(*backend), expected) << backend->name();
  }
  // The convenience overload digests the active backend.
  EXPECT_EQ(kernel_fingerprint(), expected);
}

TEST(BackendCli, BogusBackendFlagExitsTwoListingVariants) {
  config::ScopedOverrides guard(config::overrides());
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const int rc = cli::run({"run", "susceptibility", "--backend", "bogus"});
  testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
  EXPECT_NE(err.find("scalar"), std::string::npos) << err;
  invalidate_cache();  // cli::run may have cached its resolution
}

TEST(BackendCli, EnvOverrideRejectedLoudlyNotSilentlyIgnored) {
  ::setenv("SAFELIGHT_BACKEND", "quantum", 1);
  invalidate_cache();
  EXPECT_THROW(active(), std::invalid_argument);
  ::unsetenv("SAFELIGHT_BACKEND");
  invalidate_cache();
  EXPECT_NO_THROW(active());
}

}  // namespace
}  // namespace safelight::nn::backend
