// Tests for the extension attack surfaces: compromised-ADC read-out attacks
// (paper §II.C) and process-variation residual offsets.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/executor.hpp"
#include "attacks/adc_attack.hpp"
#include "attacks/corruption.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/serialize.hpp"
#include "photonics/variation.hpp"

namespace safelight {
namespace {

// ---------------------------------------------------------------- adc

TEST(AdcAttack, PlanCountsFollowFraction) {
  const auto config = accel::AcceleratorConfig::crosslight();
  attack::AdcAttackConfig adc;
  adc.fraction = 0.10;
  adc.seed = 1;
  const attack::AdcAttackPlan plan = attack::plan_adc_attack(config, adc);
  EXPECT_EQ(plan.conv_rows.size(), 200u);  // 10% of 2000 CONV rows
  EXPECT_EQ(plan.fc_rows.size(), 900u);    // 10% of 9000 FC rows
}

TEST(AdcAttack, DisabledPlanIsEmpty) {
  const auto config = accel::AcceleratorConfig::crosslight();
  const attack::AdcAttackPlan plan =
      attack::plan_adc_attack(config, attack::AdcAttackConfig{});
  EXPECT_TRUE(plan.conv_rows.empty());
  EXPECT_TRUE(plan.fc_rows.empty());
}

TEST(AdcAttack, ConfigValidation) {
  attack::AdcAttackConfig adc;
  adc.fraction = 1.5;
  EXPECT_THROW(adc.validate(), std::invalid_argument);
}

TEST(AdcAttack, StuckFullScalePinsVictimChannels) {
  attack::AdcAttackPlan plan;
  plan.payload = attack::AdcPayload::kStuckFullScale;
  plan.conv_rows = {1};
  nn::Tensor t({2, 4, 2, 2});
  t.fill(0.25f);
  attack::apply_adc_payload(t, plan, accel::BlockKind::kConv,
                            /*rows_in_block=*/4, /*full_scale=*/1.0f);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (std::size_t i = 0; i < 4; ++i) {
        const float v = t[(n * 4 + c) * 4 + i];
        if (c % 4 == 1) {
          EXPECT_FLOAT_EQ(v, 1.0f);
        } else {
          EXPECT_FLOAT_EQ(v, 0.25f);
        }
      }
    }
  }
}

TEST(AdcAttack, SignFlipInvertsVictims) {
  attack::AdcAttackPlan plan;
  plan.payload = attack::AdcPayload::kSignFlip;
  plan.fc_rows = {0};
  nn::Tensor t({1, 3}, {0.5f, -0.25f, 0.75f});
  attack::apply_adc_payload(t, plan, accel::BlockKind::kFc, 3, 1.0f);
  EXPECT_FLOAT_EQ(t[0], -0.5f);
  EXPECT_FLOAT_EQ(t[1], -0.25f);  // untouched
  EXPECT_FLOAT_EQ(t[2], 0.75f);
}

TEST(AdcAttack, MsbFlipShiftsByHalfScale) {
  attack::AdcAttackPlan plan;
  plan.payload = attack::AdcPayload::kMsbFlip;
  plan.fc_rows = {0};
  nn::Tensor t({1, 1}, {0.6f});
  attack::apply_adc_payload(t, plan, accel::BlockKind::kFc, 1, 2.0f);
  EXPECT_FLOAT_EQ(t[0], -0.4f);  // 0.6 - 1.0
  t[0] = -0.6f;
  attack::apply_adc_payload(t, plan, accel::BlockKind::kFc, 1, 2.0f);
  EXPECT_FLOAT_EQ(t[0], 0.4f);
}

TEST(AdcAttack, TimeSharingStrideHitsAliasedChannels) {
  // rows_in_block = 2, victim row 0 -> channels 0 and 2 of a 4-channel
  // tensor are corrupted (they time-share the same physical ADC).
  attack::AdcAttackPlan plan;
  plan.payload = attack::AdcPayload::kStuckFullScale;
  plan.conv_rows = {0};
  nn::Tensor t({1, 4, 1, 1});
  attack::apply_adc_payload(t, plan, accel::BlockKind::kConv, 2, 1.0f);
  EXPECT_FLOAT_EQ(t[0], 1.0f);
  EXPECT_FLOAT_EQ(t[1], 0.0f);
  EXPECT_FLOAT_EQ(t[2], 1.0f);
  EXPECT_FLOAT_EQ(t[3], 0.0f);
}

TEST(AdcAttack, ZeroFullScaleIsNoop) {
  attack::AdcAttackPlan plan;
  plan.payload = attack::AdcPayload::kStuckFullScale;
  plan.fc_rows = {0};
  nn::Tensor t({1, 1}, {0.5f});
  attack::apply_adc_payload(t, plan, accel::BlockKind::kFc, 1, 0.0f);
  EXPECT_FLOAT_EQ(t[0], 0.5f);
}

TEST(AdcAttack, ExecutorHookDegradesAccuracy) {
  Rng rng(3);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 64, 10, rng);

  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  accel::OnnExecutor executor(config);
  executor.condition_weights(model);
  nn::Tensor x({2, 1, 8, 8});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
  }
  const nn::Tensor clean = executor.forward(model, x);

  attack::AdcAttackConfig adc;
  adc.fraction = 0.5;
  adc.payload = attack::AdcPayload::kStuckFullScale;
  const attack::AdcAttackPlan plan = attack::plan_adc_attack(config, adc);
  executor.set_readout_hook(
      [&plan, &config](nn::Tensor& t, accel::BlockKind kind,
                       float full_scale) {
        attack::apply_adc_payload(t, plan, kind,
                                  config.block(kind).bank_count(),
                                  full_scale);
      });
  EXPECT_TRUE(executor.has_readout_hook());
  const nn::Tensor attacked = executor.forward(model, x);
  EXPECT_GT(nn::max_abs_diff(clean, attacked), 0.01f);

  executor.set_readout_hook(nullptr);
  EXPECT_FALSE(executor.has_readout_hook());
  const nn::Tensor restored = executor.forward(model, x);
  EXPECT_FLOAT_EQ(nn::max_abs_diff(clean, restored), 0.0f);
}

TEST(AdcAttack, PayloadNames) {
  EXPECT_EQ(attack::to_string(attack::AdcPayload::kStuckFullScale),
            "stuck-full-scale");
  EXPECT_EQ(attack::to_string(attack::AdcPayload::kSignFlip), "sign-flip");
  EXPECT_EQ(attack::to_string(attack::AdcPayload::kMsbFlip), "msb-flip");
}

// ---------------------------------------------------------------- pv

TEST(ProcessVariation, FullyTrimmedWhenWithinBudget) {
  Rng rng(5);
  phot::ProcessVariation pv;
  pv.sigma_nm = 0.1;
  pv.trim_range_nm = 10.0;  // everything trims
  const auto residuals = phot::sample_residual_offsets(500, pv, rng);
  for (double r : residuals) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(ProcessVariation, ZeroTrimLeavesRawOffsets) {
  Rng rng(5);
  phot::ProcessVariation pv;
  pv.sigma_nm = 0.4;
  pv.trim_range_nm = 0.0;
  const auto residuals = phot::sample_residual_offsets(4000, pv, rng);
  double sq = 0.0;
  for (double r : residuals) sq += r * r;
  EXPECT_NEAR(std::sqrt(sq / 4000.0), 0.4, 0.05);
}

TEST(ProcessVariation, PartialTrimShrinksTail) {
  Rng rng(5);
  phot::ProcessVariation pv;
  pv.sigma_nm = 0.5;
  pv.trim_range_nm = 0.5;  // one sigma of budget
  const auto residuals = phot::sample_residual_offsets(4000, pv, rng);
  std::size_t nonzero = 0;
  for (double r : residuals) {
    if (r != 0.0) ++nonzero;
  }
  // P(|x| > sigma) ~ 32%: most rings trim fully, a tail survives.
  EXPECT_NEAR(static_cast<double>(nonzero) / 4000.0, 0.317, 0.05);
}

TEST(ProcessVariation, BankFidelityDegradesWithUntrimmedPv) {
  phot::MrGeometry geometry;
  const phot::Microring reference(geometry, 1550.0);
  const phot::WdmGrid grid(8, 1550.0, reference.fsr_nm());

  auto fidelity_with = [&](double trim_range) {
    phot::MrBank bank(geometry, grid);
    std::vector<double> weights(8, 0.5);
    bank.set_weights(weights);
    Rng rng(9);
    phot::ProcessVariation pv;
    pv.sigma_nm = 0.15;
    pv.trim_range_nm = trim_range;
    phot::apply_process_variation(bank, pv, rng);
    bank.set_weights(weights);  // re-imprint on the offset rings
    double err = 0.0;
    for (double w : bank.effective_weights()) err += std::abs(w - 0.5);
    return err;
  };
  EXPECT_GT(fidelity_with(0.0), fidelity_with(1.0) + 1e-6);
}

TEST(ProcessVariation, ValidationRejectsNegatives) {
  phot::ProcessVariation pv;
  pv.sigma_nm = -1.0;
  EXPECT_THROW(pv.validate(), std::invalid_argument);
}

TEST(ProcessVariation, FabricationOffsetShiftsResonance) {
  phot::MrGeometry geometry;
  phot::Microring ring(geometry, 1550.0);
  const double base = ring.resonance_nm();
  ring.set_fabrication_offset_nm(0.2);
  EXPECT_NEAR(ring.resonance_nm(), base + 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(ring.fabrication_offset_nm(), 0.2);
}

// ---------------------------------------------------------------- quarantine

namespace {

nn::Sequential make_quarantine_model() {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(4 * 16, 6, rng);
  return model;
}

accel::AcceleratorConfig quarantine_accel() {
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{2, 2, 4};
  config.fc = accel::BlockDims{2, 4, 10};
  return config;
}

attack::AttackScenario hotspot_scenario() {
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kHotspot;
  scenario.target = attack::AttackTarget::kConvBlock;
  scenario.fraction = 0.25;
  scenario.seed = 5;
  return scenario;
}

}  // namespace

TEST(Quarantine, FullSpareCapacityNeutralizesHotspot) {
  nn::Sequential model = make_quarantine_model();
  const auto before = nn::snapshot_state(model);
  accel::WeightStationaryMapping mapping(model, quarantine_accel());
  attack::CorruptionConfig config;
  config.quarantine.enabled = true;
  config.quarantine.detect_threshold_k = 0.1;   // sentinels see everything
  config.quarantine.spare_bank_fraction = 1.0;  // unlimited spares
  const auto stats =
      attack::apply_attack(mapping, hotspot_scenario(), config);
  EXPECT_GT(stats.quarantined_banks, 0u);
  EXPECT_EQ(stats.corrupted_weights, 0u);
  const auto after = nn::snapshot_state(model);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(nn::max_abs_diff(before[i], after[i]), 0.0f);
  }
}

TEST(Quarantine, LimitedBudgetRescuesHottestFirst) {
  nn::Sequential unprotected = make_quarantine_model();
  accel::WeightStationaryMapping mapping_a(unprotected, quarantine_accel());
  const auto stats_plain =
      attack::apply_attack(mapping_a, hotspot_scenario());

  nn::Sequential protected_model = make_quarantine_model();
  accel::WeightStationaryMapping mapping_b(protected_model,
                                           quarantine_accel());
  attack::CorruptionConfig config;
  config.quarantine.enabled = true;
  config.quarantine.detect_threshold_k = 5.0;
  config.quarantine.spare_bank_fraction = 0.25;  // 1 of 4 CONV banks
  const auto stats_protected =
      attack::apply_attack(mapping_b, hotspot_scenario(), config);

  EXPECT_EQ(stats_protected.quarantined_banks, 1u);
  EXPECT_LT(stats_protected.corrupted_weights, stats_plain.corrupted_weights);
  EXPECT_GT(stats_protected.corrupted_weights, 0u);  // budget exhausted
}

TEST(Quarantine, HighThresholdDetectsNothing) {
  nn::Sequential model = make_quarantine_model();
  accel::WeightStationaryMapping mapping(model, quarantine_accel());
  attack::CorruptionConfig config;
  config.quarantine.enabled = true;
  config.quarantine.detect_threshold_k = 1e6;
  config.quarantine.spare_bank_fraction = 1.0;
  const auto stats =
      attack::apply_attack(mapping, hotspot_scenario(), config);
  EXPECT_EQ(stats.quarantined_banks, 0u);
  EXPECT_GT(stats.corrupted_weights, 0u);
}

TEST(Quarantine, DisabledByDefault) {
  nn::Sequential model = make_quarantine_model();
  accel::WeightStationaryMapping mapping(model, quarantine_accel());
  const auto stats = attack::apply_attack(mapping, hotspot_scenario());
  EXPECT_EQ(stats.quarantined_banks, 0u);
}

TEST(Quarantine, ConfigValidation) {
  attack::QuarantineConfig config;
  config.spare_bank_fraction = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = attack::QuarantineConfig{};
  config.detect_threshold_k = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace safelight
