// Distributed sweep sharding: protocol, multi-writer store merge, and the
// coordinator/worker chaos harness.
//
// The end-to-end tests spawn the real `safelight` binary (the coordinator
// re-execs it as workers via /proc/self/exe) on the tiniest deterministic
// sweep and assert the one property the whole dist layer exists for:
// *distributed output is bitwise-identical to a single-process run* — with
// healthy workers, under injected crashes (PR 6 plug pulls armed inside
// the workers via --chaos), and across hung-worker kills. Worker-failure
// semantics (heartbeat-timeout reassignment, retry accounting, poison-task
// quarantine with nonzero exit and a named report) are asserted against
// the machine-parsable "[dist] summary:" line and stderr.
//
// These tests fork whole process trees; they carry the `dist` ctest label
// and stay out of the unit shard. See docs/testing.md.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/scenario.hpp"
#include "common/fault.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/result_store.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/store_merge.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

using dist::EventMessage;
using dist::TaskMessage;

// ---------------------------------------------------------------------------
// NDJSON protocol
// ---------------------------------------------------------------------------

TEST(DistProtocol, TaskRoundTripsThroughNdjsonBitExactly) {
  TaskMessage task;
  task.id = 42;
  task.model = "cnn1";
  task.scale = "tiny";
  task.variant = "l2+n3";
  task.l2_strength = 3e-4;  // not exactly representable in decimal
  task.store_stem = "cnn1_tiny_l2+n3_deadbeef_cafe";
  task.fingerprint = "e43e271b";
  task.baseline = true;
  task.scenarios = attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kBothBlocks}, {0.1, 0.05}, 2);

  const std::string line = dist::encode_task(task);
  ASSERT_EQ(line.back(), '\n');
  ASSERT_EQ(line.find('\n'), line.size() - 1) << "task must be one line";

  const TaskMessage decoded = dist::decode_task(line);
  EXPECT_EQ(decoded.id, task.id);
  EXPECT_EQ(decoded.model, task.model);
  EXPECT_EQ(decoded.scale, task.scale);
  EXPECT_EQ(decoded.variant, task.variant);
  EXPECT_EQ(decoded.l2_strength, task.l2_strength);  // exact double equality
  EXPECT_EQ(decoded.store_stem, task.store_stem);
  EXPECT_EQ(decoded.fingerprint, task.fingerprint);
  EXPECT_EQ(decoded.baseline, task.baseline);
  ASSERT_EQ(decoded.scenarios.size(), task.scenarios.size());
  for (std::size_t i = 0; i < task.scenarios.size(); ++i) {
    // Store keys are derived from the id, which embeds the fraction double;
    // id equality is exactly the bit-exactness the cache needs.
    EXPECT_EQ(decoded.scenarios[i].id(), task.scenarios[i].id());
    EXPECT_EQ(decoded.scenarios[i].fraction, task.scenarios[i].fraction);
  }
}

TEST(DistProtocol, EventsRoundTrip) {
  EventMessage hello;
  hello.type = EventMessage::Type::kHello;
  hello.pid = 12345;
  const EventMessage hello2 = dist::decode_event(dist::encode_event(hello));
  EXPECT_EQ(hello2.type, EventMessage::Type::kHello);
  EXPECT_EQ(hello2.pid, 12345u);

  EventMessage done;
  done.type = EventMessage::Type::kDone;
  done.task_id = 7;
  done.evaluated = 3;
  done.cached = 2;
  const EventMessage done2 = dist::decode_event(dist::encode_event(done));
  EXPECT_EQ(done2.type, EventMessage::Type::kDone);
  EXPECT_EQ(done2.task_id, 7u);
  EXPECT_EQ(done2.evaluated, 3u);
  EXPECT_EQ(done2.cached, 2u);

  EventMessage fatal;
  fatal.type = EventMessage::Type::kFatal;
  fatal.task_id = 9;
  fatal.message = "fingerprint mismatch: \"a\" vs \"b\"\nsecond line";
  const EventMessage fatal2 = dist::decode_event(dist::encode_event(fatal));
  EXPECT_EQ(fatal2.type, EventMessage::Type::kFatal);
  EXPECT_EQ(fatal2.task_id, 9u);
  EXPECT_EQ(fatal2.message, fatal.message);  // newline survives as \n escape
}

TEST(DistProtocol, TelemetryEventsRoundTrip) {
  // Spans ship with absolute nanosecond timestamps and typed args; doubles
  // ride as %.17g strings, so even decimal-inexact values survive exactly.
  EventMessage shipped;
  shipped.type = EventMessage::Type::kTrace;
  trace::RawEvent span;
  span.name = "worker.task";
  span.cat = "dist";
  span.start_ns = 123456789012345ull;
  span.dur_ns = 987654321ull;
  span.tid = 3;
  span.num_args.emplace_back("gflops", 0.1 + 0.2);  // 0.30000000000000004
  span.str_args.emplace_back("variant", "l2+n3");
  shipped.spans.push_back(span);
  const EventMessage t2 = dist::decode_event(dist::encode_event(shipped));
  ASSERT_EQ(t2.type, EventMessage::Type::kTrace);
  ASSERT_EQ(t2.spans.size(), 1u);
  EXPECT_EQ(t2.spans[0].name, span.name);
  EXPECT_EQ(t2.spans[0].cat, span.cat);
  EXPECT_EQ(t2.spans[0].start_ns, span.start_ns);
  EXPECT_EQ(t2.spans[0].dur_ns, span.dur_ns);
  EXPECT_EQ(t2.spans[0].tid, span.tid);
  ASSERT_EQ(t2.spans[0].num_args.size(), 1u);
  EXPECT_EQ(t2.spans[0].num_args[0].first, "gflops");
  EXPECT_EQ(t2.spans[0].num_args[0].second, 0.1 + 0.2);  // exact equality
  ASSERT_EQ(t2.spans[0].str_args.size(), 1u);
  EXPECT_EQ(t2.spans[0].str_args[0].second, "l2+n3");

  // Metrics snapshots carry sparse histogram buckets so the coordinator
  // can merge them additively.
  EventMessage registry;
  registry.type = EventMessage::Type::kMetrics;
  registry.metrics.counters["gemm.calls"] = 11298;
  registry.metrics.gauges["pool.threads"] = 4.0;
  metrics::HistogramSnapshot hist;
  hist.count = 3;
  hist.sum = 0.1 + 0.2;
  hist.min = 0.1;
  hist.max = 0.15;
  hist.buckets[0] = 1;
  hist.buckets[115] = 2;
  registry.metrics.histograms["gemm.gflops"] = hist;
  const EventMessage m2 = dist::decode_event(dist::encode_event(registry));
  ASSERT_EQ(m2.type, EventMessage::Type::kMetrics);
  EXPECT_EQ(m2.metrics.counters.at("gemm.calls"), 11298u);
  EXPECT_EQ(m2.metrics.gauges.at("pool.threads"), 4.0);
  const metrics::HistogramSnapshot& h2 =
      m2.metrics.histograms.at("gemm.gflops");
  EXPECT_EQ(h2.count, hist.count);
  EXPECT_EQ(h2.sum, hist.sum);
  EXPECT_EQ(h2.min, hist.min);
  EXPECT_EQ(h2.max, hist.max);
  EXPECT_EQ(h2.buckets, hist.buckets);

  // An out-of-range bucket index is a protocol error, not a silent skip.
  EXPECT_THROW(
      dist::decode_event(
          "{\"type\":\"metrics\",\"counters\":{},\"gauges\":{},"
          "\"histograms\":{\"h\":{\"count\":1,\"sum\":\"1\",\"min\":\"1\","
          "\"max\":\"1\",\"buckets\":{\"99999\":1}}}}"),
      std::invalid_argument);
}

TEST(DistProtocol, ShutdownIsRecognizedAndMalformedLinesThrow) {
  EXPECT_TRUE(dist::is_shutdown(dist::encode_shutdown()));
  EXPECT_FALSE(dist::is_shutdown(dist::encode_event(EventMessage{})));
  EXPECT_THROW(dist::decode_task("{\"type\":\"shutdown\"}"),
               std::invalid_argument);
  EXPECT_THROW(dist::decode_task("{not json"), std::invalid_argument);
  EXPECT_THROW(dist::decode_event("{\"type\":\"task\"}"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Multi-writer store merge
// ---------------------------------------------------------------------------

void write_store(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
}

TEST(StoreMerge, DedupsIdenticalRowsAndAppendsFreshOnes) {
  TempDir dir("merge_dedup");
  const std::string w0 = dir.path() + "/w0.csv";
  const std::string w1 = dir.path() + "/w1.csv";
  const std::string dest = dir.path() + "/dest.csv";
  // Speculative execution makes byte-identical duplicates across workers
  // the *normal* case, not a corner case.
  write_store(w0, "key,accuracy\na/n300,0.5\nb/n300,0.25\n");
  write_store(w1, "key,accuracy\nb/n300,0.25\nc/n300,0.75\n");

  const dist::MergeStats stats = dist::merge_stores({w0, w1}, dest);
  EXPECT_EQ(stats.sources, 2u);
  EXPECT_EQ(stats.appended, 3u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(read_file_bytes(dest),
            "key,accuracy\na/n300,0.5\nb/n300,0.25\nc/n300,0.75\n");

  // Re-merging the same sources is a no-op (idempotent resume).
  const dist::MergeStats again = dist::merge_stores({w0, w1}, dest);
  EXPECT_EQ(again.appended, 0u);
  EXPECT_EQ(again.duplicates, 4u);
}

TEST(StoreMerge, ByteConflictOnOneKeyIsAHardError) {
  TempDir dir("merge_conflict");
  const std::string w0 = dir.path() + "/w0.csv";
  const std::string w1 = dir.path() + "/w1.csv";
  const std::string dest = dir.path() + "/dest.csv";
  write_store(w0, "key,accuracy\na/n300,0.5\n");
  write_store(w1, "key,accuracy\na/n300,0.5000001\n");

  try {
    dist::merge_stores({w0, w1}, dest);
    FAIL() << "conflicting values must not merge silently";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("merge conflict"), std::string::npos) << what;
    EXPECT_NE(what.find("a/n300"), std::string::npos) << what;
    EXPECT_NE(what.find("0.5000001"), std::string::npos) << what;
  }
}

TEST(StoreMerge, MissingEmptyAndTornWorkerStoresAreHandled) {
  TempDir dir("merge_torn");
  const std::string missing = dir.path() + "/never_written.csv";
  const std::string empty = dir.path() + "/empty.csv";
  const std::string torn = dir.path() + "/torn.csv";
  const std::string dest = dir.path() + "/dest.csv";
  write_store(empty, "");
  // A chaos kill mid-append leaves a torn final row; it must be skipped,
  // not merged as a mangled value.
  write_store(torn, "key,accuracy\na/n300,0.5\nb/n300,0.2");

  const dist::MergeStats stats =
      dist::merge_stores({missing, empty, torn}, dest);
  EXPECT_EQ(stats.sources, 2u);  // the missing file is not an error
  EXPECT_EQ(stats.appended, 1u);
  EXPECT_EQ(read_file_bytes(dest), "key,accuracy\na/n300,0.5\n");
}

TEST(StoreMerge, MergedFileIsALoadableResultStore) {
  TempDir dir("merge_loadable");
  const std::string w0 = dir.path() + "/w0.csv";
  const std::string dest = dir.path() + "/dest.csv";
  // Rows written by a real ResultStore (the %.17g format the pipeline
  // uses), merged, must load back bit-exactly.
  {
    core::ResultStore source(w0);
    source.put("a/n300", 1.0 / 3.0);
    source.put("baseline/n300", 0.9375);
  }
  dist::merge_stores({w0}, dest);
  core::ResultStore merged(dest);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.lookup("a/n300"), 1.0 / 3.0);
  EXPECT_EQ(merged.lookup("baseline/n300"), 0.9375);
}

// ---------------------------------------------------------------------------
// Coordinator timing
// ---------------------------------------------------------------------------

TEST(Coordinator, LivenessClockIsPinnedSteady) {
  // All heartbeat/backoff/drain bookkeeping runs on CoordinatorClock; a
  // wall clock here would let one NTP step expire every worker's heartbeat
  // window at once. The static_assert in coordinator.hpp catches a refactor
  // at compile time; this keeps the property visible in the test report.
  static_assert(dist::CoordinatorClock::is_steady,
                "coordinator liveness bookkeeping must not follow wall time");
  EXPECT_TRUE(dist::CoordinatorClock::is_steady);
}

// ---------------------------------------------------------------------------
// End-to-end coordinator/worker runs (real binary, real subprocesses)
// ---------------------------------------------------------------------------

constexpr double kRunTimeoutSeconds = 240.0;

struct DistRunResult {
  ProcessResult proc;
  std::map<std::string, std::string> summary;  // parsed "[dist] summary:" k=v
  std::string csv_bytes;                       // fig7_susceptibility.csv
  std::string json_bytes;                      // susceptibility_cnn1.json
};

/// Runs `safelight run susceptibility` (cnn1, tiny, 2 seeds, 1 thread) in
/// `dir` with extra flags/env; parses the dist summary line when present.
DistRunResult run_susceptibility(const std::string& dir,
                                 const std::vector<std::string>& extra_flags,
                                 const std::vector<std::string>& extra_env,
                                 double kill_after_s = 0.0,
                                 int kill_signal = 0) {
  std::vector<std::string> argv = {
      SAFELIGHT_CLI_BIN, "run",     "susceptibility",
      "--model",         "cnn1",    "--scale",
      "tiny",            "--seeds", "2",
      "--threads",       "1",       "--zoo",
      dir + "/zoo",      "--out",   dir + "/out",
      "--json"};
  argv.insert(argv.end(), extra_flags.begin(), extra_flags.end());

  DistRunResult result;
  result.proc = run_process(argv, extra_env, dir, kRunTimeoutSeconds,
                            kill_after_s, kill_signal);
  std::istringstream lines(result.proc.stdout_text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("[dist] summary:", 0) != 0) continue;
    std::istringstream fields(line.substr(15));
    std::string field;
    while (fields >> field) {
      const std::size_t eq = field.find('=');
      if (eq != std::string::npos) {
        result.summary[field.substr(0, eq)] = field.substr(eq + 1);
      }
    }
  }
  result.csv_bytes = read_file_bytes(dir + "/out/fig7_susceptibility.csv");
  result.json_bytes = read_file_bytes(dir + "/out/susceptibility_cnn1.json");
  return result;
}

std::uint64_t summary_count(const DistRunResult& result,
                            const std::string& key) {
  const auto it = result.summary.find(key);
  return it == result.summary.end() ? 0 : std::stoull(it->second);
}

/// The single-process reference bytes every distributed variant must
/// reproduce exactly. Computed once (training included) and reused.
const DistRunResult& reference_run() {
  static const DistRunResult reference = [] {
    static TempDir dir("dist_reference");  // outlives every comparison
    DistRunResult run = run_susceptibility(dir.path(), {}, {});
    EXPECT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
    EXPECT_FALSE(run.csv_bytes.empty());
    EXPECT_FALSE(run.json_bytes.empty());
    return run;
  }();
  return reference;
}

const std::string& reference_csv() { return reference_run().csv_bytes; }
const std::string& reference_json() { return reference_run().json_bytes; }

TEST(DistRun, TwoWorkersMatchSingleProcessBitwise) {
  TempDir dir("dist_two_workers");
  const DistRunResult run =
      run_susceptibility(dir.path(), {"--workers", "2"}, {});
  ASSERT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
  ASSERT_FALSE(run.summary.empty()) << run.proc.stdout_text;
  EXPECT_EQ(summary_count(run, "workers"), 2u);
  EXPECT_EQ(summary_count(run, "crashes"), 0u);
  EXPECT_EQ(summary_count(run, "quarantined"), 0u);
  EXPECT_GE(summary_count(run, "tasks"), 2u);
  EXPECT_EQ(summary_count(run, "completed"), summary_count(run, "tasks"));
  EXPECT_EQ(run.csv_bytes, reference_csv());
  EXPECT_EQ(run.json_bytes, reference_json());
}

TEST(DistRun, MismatchedKernelFingerprintFailsTheHandshake) {
  // A worker advertising different kernel numerics (here: the test seam
  // that fakes the hello fingerprint, standing in for a SAFELIGHT_DIST_BIN
  // binary built with different math) must be refused before any task is
  // dispatched — merging its store rows would silently mix numerics.
  TempDir dir("dist_bad_kernel");
  const DistRunResult run =
      run_susceptibility(dir.path(), {"--workers", "1"},
                         {"SAFELIGHT_DIST_FAKE_KERNEL=deadbeefdeadbeef"});
  EXPECT_NE(run.proc.exit_code, 0);
  EXPECT_NE(run.proc.stderr_text.find("deadbeefdeadbeef"), std::string::npos)
      << run.proc.stderr_text;
  EXPECT_NE(run.proc.stderr_text.find("SAFELIGHT_DIST_BIN"),
            std::string::npos)
      << run.proc.stderr_text;
  // Failed before any work: the sweep CSV was never assembled.
  EXPECT_TRUE(run.csv_bytes.empty());
}

TEST(DistRun, TracedTwoWorkerRunMergesFleetTraceAndStaysBitwise) {
  TempDir dir("dist_traced");
  const std::string trace_path = dir.path() + "/trace.json";
  const std::string metrics_path = dir.path() + "/metrics.json";
  // The small heartbeat timeout shrinks the beat interval (timeout/4) so
  // worker heartbeat markers land even in a sub-second sweep.
  const DistRunResult run = run_susceptibility(
      dir.path(),
      {"--workers", "2", "--heartbeat-timeout", "0.5", "--trace", trace_path,
       "--metrics", metrics_path},
      {});
  ASSERT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
  // Observability must never perturb experiment output: the traced run's
  // CSV/JSON bytes match the untraced single-process reference.
  EXPECT_EQ(run.csv_bytes, reference_csv());
  EXPECT_EQ(run.json_bytes, reference_json());

  // One merged Chrome trace: coordinator events under pid 1, each worker
  // slot under its own named pid track.
  const JsonValue doc = JsonValue::parse(read_file_bytes(trace_path));
  std::map<std::uint64_t, std::string> tracks;
  std::map<std::uint64_t, std::set<std::string>> spans_by_pid;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    const std::uint64_t pid = event.at("pid").as_uint();
    if (event.at("ph").as_string() == "M") {
      tracks[pid] = event.at("args").at("name").as_string();
    } else {
      spans_by_pid[pid].insert(event.at("name").as_string());
    }
  }
  EXPECT_EQ(tracks[1], "coordinator");
  EXPECT_EQ(tracks[2], "worker w0");
  EXPECT_EQ(tracks[3], "worker w1");
  EXPECT_TRUE(spans_by_pid[1].count("dist.dispatch")) << run.proc.stderr_text;
  EXPECT_TRUE(spans_by_pid[1].count("dist.task"));
  EXPECT_TRUE(spans_by_pid[1].count("dist.merge"));
  bool worker_task = false;
  bool worker_beat = false;
  for (const auto& [pid, names] : spans_by_pid) {
    if (pid < 2) continue;
    worker_task = worker_task || names.count("worker.task") > 0;
    worker_beat = worker_beat || names.count("dist.heartbeat") > 0;
  }
  EXPECT_TRUE(worker_task) << "no worker shipped a task-execution span";
  EXPECT_TRUE(worker_beat) << "no worker shipped a heartbeat marker";

  // Fleet metrics: worker registries merged into the coordinator's, so
  // coordinator-side dist counters and worker-side gemm counters coexist.
  const JsonValue fleet = JsonValue::parse(read_file_bytes(metrics_path));
  EXPECT_EQ(fleet.at("schema").as_string(), "safelight.metrics.v1");
  EXPECT_GE(fleet.at("counters").at("dist.dispatches").as_uint(),
            summary_count(run, "tasks"));
  EXPECT_GT(fleet.at("counters").at("gemm.calls").as_uint(), 0u);
}

TEST(DistRun, SecondRunIsFullyCachedAndPlansNoTasks) {
  TempDir dir("dist_cached");
  const DistRunResult first =
      run_susceptibility(dir.path(), {"--workers", "2"}, {});
  ASSERT_EQ(first.proc.exit_code, 0) << first.proc.stderr_text;
  // Same spec, same cache: the planner must find every cell cached and
  // dispatch nothing.
  const DistRunResult second =
      run_susceptibility(dir.path(), {"--workers", "2"}, {});
  ASSERT_EQ(second.proc.exit_code, 0) << second.proc.stderr_text;
  EXPECT_EQ(summary_count(second, "tasks"), 0u);
  EXPECT_EQ(second.csv_bytes, reference_csv());
}

TEST(DistRun, ChaosKillsAreRetriedToBitwiseIdenticalOutput) {
  // PR 6 plug pulls armed *inside the workers*: every durable worker write
  // may _Exit(42) with p = 0.25. The coordinator must respawn, retry and
  // still converge on the exact reference bytes (workers resume from their
  // own stores, so progress is monotone and termination guaranteed).
  TempDir dir("dist_chaos");
  const DistRunResult run = run_susceptibility(
      dir.path(),
      {"--workers", "4", "--chaos", "0.25", "--max-task-retries", "1000"},
      {});
  ASSERT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
  EXPECT_GE(summary_count(run, "crashes"), 1u)
      << "chaos run killed no workers; the harness proved nothing: "
      << run.proc.stdout_text;
  EXPECT_GE(summary_count(run, "retries"), 1u);
  EXPECT_EQ(summary_count(run, "quarantined"), 0u);
  EXPECT_EQ(run.csv_bytes, reference_csv());
  EXPECT_EQ(run.json_bytes, reference_json());
}

TEST(DistRun, HungWorkerIsKilledByHeartbeatTimeoutAndWorkReassigned) {
  TempDir dir("dist_hang");
  // The worker SIGSTOPs itself at the matching scenario (one-shot via the
  // sentinel); its heartbeat falls silent, the coordinator SIGKILLs it
  // after --heartbeat-timeout, and the re-queued task completes on the
  // respawned replacement. A single worker makes this deterministic: with a
  // second worker present, work-stealing races (and usually beats) the
  // heartbeat kill — that path has its own test below.
  const DistRunResult run = run_susceptibility(
      dir.path(), {"--workers", "1", "--heartbeat-timeout", "1"},
      {"SAFELIGHT_DIST_HANG=hotspot/CONV+FC/f0.1",
       "SAFELIGHT_DIST_HANG_ONCE=" + dir.path() + "/hang_sentinel"});
  ASSERT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
  EXPECT_GE(summary_count(run, "hang_kills"), 1u) << run.proc.stdout_text;
  EXPECT_NE(run.proc.stderr_text.find("silent for"), std::string::npos)
      << run.proc.stderr_text;
  EXPECT_EQ(run.csv_bytes, reference_csv());
}

TEST(DistRun, HungTaskIsStolenByIdleWorkerBeforeAnyTimeout) {
  TempDir dir("dist_steal");
  // With the heartbeat timeout far beyond the test timeout, a hung worker
  // is never killed — the only way the sweep can finish is the idle second
  // worker speculatively duplicating the hung in-flight task. The duplicate
  // rows merge as byte-identical dedups, so the CSV still matches.
  const DistRunResult run = run_susceptibility(
      dir.path(), {"--workers", "2", "--heartbeat-timeout", "600"},
      {"SAFELIGHT_DIST_HANG=hotspot/CONV+FC/f0.1",
       "SAFELIGHT_DIST_HANG_ONCE=" + dir.path() + "/hang_sentinel"});
  ASSERT_EQ(run.proc.exit_code, 0) << run.proc.stderr_text;
  EXPECT_GE(summary_count(run, "steals"), 1u) << run.proc.stdout_text;
  EXPECT_EQ(summary_count(run, "hang_kills"), 0u) << run.proc.stdout_text;
  EXPECT_EQ(run.csv_bytes, reference_csv());
}

TEST(DistRun, PoisonTaskIsQuarantinedAfterCappedRetriesWithNonzeroExit) {
  TempDir dir("dist_poison");
  // Scenarios matching the substring _Exit(41) deterministically — a task
  // that can never succeed. With --max-task-retries 2 it must be given up
  // after exactly 3 failures, loudly, with exit code 3.
  const std::string poison = "actuation/CONV/f0.01";
  const DistRunResult run = run_susceptibility(
      dir.path(), {"--workers", "2", "--max-task-retries", "2"},
      {"SAFELIGHT_DIST_POISON=" + poison});
  EXPECT_EQ(run.proc.exit_code, 3) << run.proc.stderr_text;
  EXPECT_GE(summary_count(run, "quarantined"), 1u) << run.proc.stdout_text;
  const std::string& err = run.proc.stderr_text;
  EXPECT_NE(err.find("QUARANTINED"), std::string::npos) << err;
  EXPECT_NE(err.find(poison), std::string::npos)
      << "quarantine report must name the lost scenarios: " << err;
  EXPECT_NE(err.find("after 3 failures"), std::string::npos) << err;
  EXPECT_NE(err.find("skipping report assembly"), std::string::npos) << err;
}

TEST(DistRun, SigtermExitsGracefullyWith130AndResumeHint) {
  TempDir dir("dist_sigterm");
  // Enough scenarios that SIGTERM lands mid-sweep; the handler must treat
  // it exactly like SIGINT: finish the scenario, flush, exit 130.
  std::vector<std::string> argv = {
      SAFELIGHT_CLI_BIN, "run",      "susceptibility",
      "--model",         "cnn1",     "--scale",
      "tiny",            "--seeds",  "40",
      "--threads",       "1",        "--zoo",
      dir.path() + "/zoo", "--out",  dir.path() + "/out"};
  const ProcessResult proc =
      run_process(argv, {}, dir.path(), kRunTimeoutSeconds,
                  /*kill_after_s=*/0.8, SIGTERM);
  ASSERT_FALSE(proc.timed_out) << proc.stderr_text;
  EXPECT_EQ(proc.exit_code, 130)
      << "signal=" << proc.term_signal << "\n" << proc.stderr_text;
  EXPECT_NE(proc.stderr_text.find("rerun the same command to resume"),
            std::string::npos)
      << proc.stderr_text;
}

TEST(DistRun, NonShardableExperimentFallsBackInProcessWithANote) {
  TempDir dir("dist_fallback");
  std::vector<std::string> argv = {
      SAFELIGHT_CLI_BIN, "run",     "detection",
      "--model",         "cnn1",    "--scale",
      "tiny",            "--seeds", "1",
      "--threads",       "1",       "--workers",
      "2",               "--zoo",   dir.path() + "/zoo",
      "--out",           dir.path() + "/out"};
  const ProcessResult proc =
      run_process(argv, {}, dir.path(), kRunTimeoutSeconds);
  ASSERT_EQ(proc.exit_code, 0) << proc.stderr_text;
  EXPECT_NE(proc.stdout_text.find(
                "[dist] note: experiment 'detection' is not shardable"),
            std::string::npos)
      << proc.stdout_text;
}

}  // namespace
}  // namespace safelight
