// Tests for the paper's model builders and the analytic Table I specs.
#include <gtest/gtest.h>

#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/model_spec.hpp"
#include "nn/models.hpp"

namespace safelight::nn {
namespace {

std::size_t count_layers_of_kind(Sequential& model, ParamKind kind) {
  std::size_t count = 0;
  for (Param* p : model.params()) {
    if (p->kind == kind) ++count;
  }
  return count;
}

// ---------------------------------------------------------------- specs

TEST(ModelSpec, Cnn1MatchesPaperTableI) {
  const ModelSpec spec = spec_cnn1();
  EXPECT_EQ(spec.conv_layer_count(), 2u);  // paper: 2 CONV layers
  EXPECT_EQ(spec.fc_layer_count(), 3u);    // paper: 3 FC layers
  // Paper: 2.6K conv / 41.6K fc / 44.2K total.
  EXPECT_NEAR(static_cast<double>(spec.conv_params()), 2.6e3, 0.1e3);
  EXPECT_NEAR(static_cast<double>(spec.fc_params()), 41.6e3, 0.6e3);
  EXPECT_NEAR(static_cast<double>(spec.total_params()), 44.2e3, 0.6e3);
}

TEST(ModelSpec, ResNet18LayerCountsMatchPaper) {
  const ModelSpec spec = spec_resnet18();
  EXPECT_EQ(spec.conv_layer_count(), 17u);  // paper: 17 CONV layers
  EXPECT_EQ(spec.fc_layer_count(), 1u);     // paper: 1 FC layer
  // Paper FC count is 5.1K (512 -> 10): exact.
  EXPECT_EQ(spec.fc_params(), 5130u);
}

TEST(ModelSpec, ResNet18WidthScalesConvQuadratically) {
  const ModelSpec w64 = spec_resnet18(64);
  const ModelSpec w32 = spec_resnet18(32);
  const double ratio = static_cast<double>(w64.conv_params()) /
                       static_cast<double>(w32.conv_params());
  EXPECT_NEAR(ratio, 4.0, 0.1);
}

TEST(ModelSpec, ResNet18PaperConvCountNearWidth42) {
  // The paper reports 4.7M conv parameters; our standard option-A ResNet18
  // hits ~11.0M at width 64 and crosses 4.7M near width 42.
  const ModelSpec spec = spec_resnet18(42);
  EXPECT_NEAR(static_cast<double>(spec.conv_params()), 4.7e6, 0.35e6);
}

TEST(ModelSpec, Vgg16vMatchesPaperTableI) {
  const ModelSpec spec = spec_vgg16v();
  EXPECT_EQ(spec.conv_layer_count(), 6u);  // paper: 6 CONV layers
  EXPECT_EQ(spec.fc_layer_count(), 3u);    // paper: 3 FC layers
  // Paper: 3.9M conv / 119.6M fc / 123.5M total. The FC stack (25088 ->
  // 4096 -> 4096 -> 10) matches the paper exactly.
  EXPECT_NEAR(static_cast<double>(spec.fc_params()), 119.6e6, 0.1e6);
  EXPECT_NEAR(static_cast<double>(spec.conv_params()), 3.9e6, 0.25e6);
  EXPECT_NEAR(static_cast<double>(spec.total_params()), 123.5e6, 0.3e6);
}

TEST(ModelSpec, LayerParamFormulas) {
  EXPECT_EQ((ConvLayerSpec{3, 8, 3, true}.params()), 3u * 8 * 9 + 8);
  EXPECT_EQ((ConvLayerSpec{3, 8, 3, false}.params()), 3u * 8 * 9);
  EXPECT_EQ((FcLayerSpec{10, 4, true}.params()), 44u);
}

// ---------------------------------------------------------------- builders

TEST(Models, Cnn1ConstructsAndRuns) {
  ModelConfig config;
  config.image_size = 28;
  auto model = make_cnn1(config);
  const Tensor x({2, 1, 28, 28});
  const Tensor out = model->forward(x, false);
  EXPECT_EQ(out.shape(), (Shape{2, 10}));
  // Paper Table I total (44.2K) within rounding.
  EXPECT_NEAR(static_cast<double>(model->num_parameters()), 44.2e3, 0.6e3);
}

TEST(Models, Cnn1LayerComposition) {
  ModelConfig config;
  auto model = make_cnn1(config);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kConvWeight), 2u);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kLinearWeight), 3u);
}

TEST(Models, ResNet18FullScaleComposition) {
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 32;
  config.width = 64;
  auto model = make_resnet18(config);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kConvWeight), 17u);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kLinearWeight), 1u);
  // Runtime conv params match the analytic spec.
  std::size_t conv_params = 0, fc_params = 0;
  for (Param* p : model->params()) {
    if (p->kind == ParamKind::kConvWeight) conv_params += p->value.numel();
    if (p->kind == ParamKind::kLinearWeight) fc_params += p->value.numel();
  }
  const ModelSpec spec = spec_resnet18(64);
  EXPECT_EQ(conv_params, spec.conv_params());
  EXPECT_EQ(fc_params + 10, spec.fc_params());  // spec includes the bias
}

TEST(Models, ResNet18ReducedRuns) {
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 16;
  config.width = 8;
  auto model = make_resnet18(config);
  const Tensor x({2, 3, 16, 16});
  EXPECT_EQ(model->forward(x, false).shape(), (Shape{2, 10}));
  EXPECT_EQ(model->output_shape({2, 3, 16, 16}), (Shape{2, 10}));
}

TEST(Models, ResNet18TrainEvalCycle) {
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 12;
  config.width = 4;
  auto model = make_resnet18(config);
  const Tensor x({2, 3, 12, 12});
  const Tensor train_out = model->forward(x, true);
  EXPECT_TRUE(train_out.all_finite());
  const Tensor eval_out = model->forward(x, false);
  EXPECT_TRUE(eval_out.all_finite());
}

TEST(Models, Vgg16vFullScaleClassifierDims) {
  // Construct at paper width but tiny image to avoid the 123M-param FC
  // allocation; the classifier dims depend only on width/pools.
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 32;
  config.width = 64;
  config.fc_dim = 128;  // reduced classifier for memory
  auto model = make_vgg16v(config);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kConvWeight), 6u);
  EXPECT_EQ(count_layers_of_kind(*model, ParamKind::kLinearWeight), 3u);
  const Tensor x({1, 3, 32, 32});
  EXPECT_EQ(model->forward(x, false).shape(), (Shape{1, 10}));
}

TEST(Models, Vgg16vReducedRuns) {
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 16;
  config.width = 8;
  config.fc_dim = 32;
  auto model = make_vgg16v(config);
  const Tensor x({2, 3, 16, 16});
  EXPECT_EQ(model->forward(x, false).shape(), (Shape{2, 10}));
}

TEST(Models, Vgg16vDropoutOnlyActiveInTraining) {
  ModelConfig config;
  config.in_channels = 3;
  config.image_size = 16;
  config.width = 8;
  config.fc_dim = 32;
  config.dropout = 0.5f;
  auto model = make_vgg16v(config);
  const Tensor x({1, 3, 16, 16});
  const Tensor a = model->forward(x, false);
  const Tensor b = model->forward(x, false);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);  // eval is deterministic
}

TEST(Models, IdRoundTrip) {
  for (ModelId id :
       {ModelId::kCnn1, ModelId::kResNet18, ModelId::kVgg16v}) {
    EXPECT_EQ(model_id_from_string(to_string(id)), id);
  }
  EXPECT_THROW(model_id_from_string("alexnet"), std::invalid_argument);
}

TEST(Models, DispatchMatchesDirectBuilders) {
  ModelConfig config;
  auto a = make_model(ModelId::kCnn1, config);
  auto b = make_cnn1(config);
  EXPECT_EQ(a->num_parameters(), b->num_parameters());
}

TEST(Models, InvalidConfigsThrow) {
  ModelConfig config;
  config.image_size = 8;  // too small for LeNet
  EXPECT_THROW(make_cnn1(config), std::invalid_argument);
  ModelConfig vgg_config;
  vgg_config.width = 12;  // not a multiple of 8
  EXPECT_THROW(make_vgg16v(vgg_config), std::invalid_argument);
}

TEST(Models, DeterministicInitGivenSeed) {
  ModelConfig config;
  config.seed = 5;
  auto a = make_cnn1(config);
  auto b = make_cnn1(config);
  const auto pa = a->params();
  const auto pb = b->params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_FLOAT_EQ(max_abs_diff(pa[i]->value, pb[i]->value), 0.0f);
  }
}

}  // namespace
}  // namespace safelight::nn
