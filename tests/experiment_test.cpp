// Unified experiment API (core/experiment.hpp): registry contents, spec
// validation, spec -> run -> ExperimentResult -> CSV/JSON round trips for
// every registered experiment at tiny scale, bitwise equivalence of the
// deprecated run_* shims with the registry path, and the run-all contract
// (one shared zoo, no retrain between experiments).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <system_error>

#include "attacks/campaign.hpp"
#include "cli/cli.hpp"
#include "common/config.hpp"
#include "core/experiment.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

core::ExperimentSetup tiny_setup() {
  return core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
}

/// A spec sized for test speed: cnn1 at tiny scale, minimal grid.
core::ExperimentSpec tiny_spec(const std::string& experiment,
                               const std::string& cache_dir) {
  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec(experiment);
  spec.model = nn::ModelId::kCnn1;
  spec.scale = Scale::kTiny;
  spec.seed_count = 1;
  spec.cache_dir = cache_dir;
  spec.clean_runs = 2;
  if (experiment == "robust_compare") {
    // Pin the robust variant so the test does not run the full 11-variant
    // mitigation selection sweep.
    spec.robust_variant = "l2+n3";
  }
  if (experiment == "campaign") {
    attack::CompositeScenario hotspot;
    hotspot.components.push_back(
        {attack::AttackVector::kHotspot, attack::AttackTarget::kBothBlocks,
         0.10, 42});
    spec.campaigns = {attack::burst_campaign("ambush", hotspot,
                                             /*lead_dormant=*/1,
                                             /*trail_dormant=*/0)};
  }
  return spec;
}

TEST(ExperimentRegistry, ListsTheFiveBuiltinsInFigureOrder) {
  const auto names = core::ExperimentRegistry::global().names();
  EXPECT_EQ(names, (std::vector<std::string>{"susceptibility", "mitigation",
                                             "robust_compare", "detection",
                                             "campaign"}));
  for (const std::string& name : names) {
    const core::ExperimentInfo& info =
        core::ExperimentRegistry::global().info(name);
    EXPECT_FALSE(info.summary.empty());
    EXPECT_GE(info.default_seed_count, 1u);
    EXPECT_FALSE(info.csv_files.empty());
    EXPECT_TRUE(static_cast<bool>(info.run));
  }
}

TEST(ExperimentRegistry, UnknownExperimentNameIsActionable) {
  try {
    core::ExperimentRegistry::global().info("susceptibilty");  // typo
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("susceptibilty"), std::string::npos);
    // The message lists what *is* registered.
    EXPECT_NE(what.find("susceptibility"), std::string::npos);
    EXPECT_NE(what.find("campaign"), std::string::npos);
  }
}

TEST(ExperimentRegistry, DuplicateAndInvalidRegistrationsThrow) {
  core::ExperimentRegistry registry;
  core::ExperimentInfo info;
  info.name = "custom";
  info.run = core::run_susceptibility_experiment;
  registry.add(info);
  EXPECT_THROW(registry.add(info), std::invalid_argument);  // duplicate
  core::ExperimentInfo nameless;
  nameless.run = core::run_susceptibility_experiment;
  EXPECT_THROW(registry.add(nameless), std::invalid_argument);
  core::ExperimentInfo runless;
  runless.name = "runless";
  EXPECT_THROW(registry.add(runless), std::invalid_argument);
}

TEST(ExperimentSpec, ValidationRejectsBadFieldsWithActionableMessages) {
  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("susceptibility");

  spec.seed_count = 0;
  try {
    spec.validate();
    FAIL() << "seed_count == 0 must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("seed_count"), std::string::npos);
  }
  spec.seed_count = 1;
  EXPECT_NO_THROW(spec.validate());

  spec.variant = "l2+n42";
  try {
    spec.validate();
    FAIL() << "unknown variant must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("l2+n42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Original"), std::string::npos);
  }
  spec.variant = "Original";

  spec.robust_variant = "nope";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.robust_variant.clear();

  spec.clean_runs = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ExperimentSpec, VariantOverridePassesThroughVerbatim) {
  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("detection");
  // Name + l2_strength resolution is the default path...
  spec.variant = "l2+n3";
  EXPECT_FLOAT_EQ(spec.resolved_variant().noise_sigma, 0.3f);
  // ... but a full override survives unchanged — custom sigma, non-paper
  // name — and validates without a name lookup (the legacy detection /
  // campaign shims rely on this to not silently alter the swept variant).
  core::VariantSpec custom;
  custom.name = "custom_sigma";
  custom.weight_decay = 1e-3f;
  custom.noise_sigma = 0.55f;
  spec.variant_override = custom;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.resolved_variant().name, "custom_sigma");
  EXPECT_FLOAT_EQ(spec.resolved_variant().noise_sigma, 0.55f);
  // An unnameable override cannot key zoo/result-store entries.
  spec.variant_override->name.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ExperimentSpec, RunRejectsUnknownModelNameAtTheParseBoundary) {
  // Specs hold a typed ModelId; name-based entry (CLI --model) goes through
  // model_id_from_string, which must reject typos with the valid names.
  try {
    nn::model_id_from_string("resnet19");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("resnet19"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("resnet18"), std::string::npos);
  }
}

TEST(ExperimentSweep, EveryRegisteredExperimentRoundTripsAtTinyScale) {
  TempDir dir("experiment_roundtrip");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  std::vector<std::string> notes;
  context.progress = [&](const std::string& stage) { notes.push_back(stage); };

  const auto& registry = core::ExperimentRegistry::global();
  for (const std::string& name : registry.names()) {
    SCOPED_TRACE(name);
    const core::ExperimentSpec spec = tiny_spec(name, dir.path());
    const core::ExperimentResult result = registry.run(spec, context);

    EXPECT_EQ(result.experiment, name);
    EXPECT_GT(result.wall_seconds, 0.0);

    // CSV round trip: documents carry the registered file stems, a header
    // and at least one row each.
    const std::vector<core::CsvDocument> docs = result.to_csv();
    ASSERT_EQ(docs.size(), registry.info(name).csv_files.size());
    for (std::size_t i = 0; i < docs.size(); ++i) {
      EXPECT_EQ(docs[i].file_stem, registry.info(name).csv_files[i]);
      EXPECT_FALSE(docs[i].header.empty());
      ASSERT_FALSE(docs[i].rows.empty());
      for (const auto& row : docs[i].rows) {
        EXPECT_EQ(row.size(), docs[i].header.size());
      }
    }

    // JSON: deterministic (two calls identical) and carries the header
    // fields plus a report body.
    const std::string json = result.to_json();
    EXPECT_EQ(json, result.to_json());
    EXPECT_NE(json.find("\"experiment\": \"" + name + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"model\": \"cnn1\""), std::string::npos);
    EXPECT_NE(json.find("\"scale\": \"tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"report\": {"), std::string::npos);
  }
  EXPECT_FALSE(notes.empty());  // progress hook fired
}

TEST(ExperimentSweep, DeprecatedShimsMatchTheRegistryBitwise) {
  // The legacy entry points and the registry path must produce identical
  // reports — serialized CSV bytes are the equality proxy. Separate cache
  // directories prove the equality is computational, not cache reuse.
  TempDir legacy_dir("experiment_shim_legacy");
  TempDir registry_dir("experiment_shim_registry");
  const core::ExperimentSetup setup = tiny_setup();

  // Legacy shim path.
  core::ModelZoo legacy_zoo(legacy_dir.path());
  core::SusceptibilityOptions options;
  options.seed_count = 2;
  options.cache_dir = legacy_dir.path();
  const core::SusceptibilityReport legacy =
      core::run_susceptibility(setup, legacy_zoo, options);

  // Registry path.
  core::ModelZoo registry_zoo(registry_dir.path());
  core::RunContext context(registry_zoo);
  core::ExperimentSpec spec =
      core::ExperimentRegistry::global().default_spec("susceptibility");
  spec.model = setup.model;
  spec.scale = setup.scale;
  spec.seed_count = 2;
  spec.cache_dir = registry_dir.path();
  const core::ExperimentResult result =
      core::ExperimentRegistry::global().run(spec, context);

  // Wrap the legacy report in a result so both serialize through the same
  // code; equal bytes then mean equal reports.
  core::ExperimentResult wrapped;
  wrapped.experiment = "susceptibility";
  wrapped.spec = spec;
  wrapped.payload = legacy;
  ASSERT_EQ(wrapped.to_csv().size(), 1u);
  ASSERT_EQ(result.to_csv().size(), 1u);
  EXPECT_EQ(wrapped.to_csv()[0].rows, result.to_csv()[0].rows);
  EXPECT_EQ(wrapped.to_json(), result.to_json());
}

TEST(ExperimentSweep, RunAllSharesOneZooWithoutRetraining) {
  TempDir dir("experiment_shared_zoo");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  const auto& registry = core::ExperimentRegistry::global();

  // First experiment trains the Original cnn1 variant...
  registry.run(tiny_spec("susceptibility", dir.path()), context);
  const std::string entry =
      zoo.entry_path(tiny_setup(), core::variant_by_name("Original"));
  ASSERT_TRUE(std::filesystem::exists(entry));
  const auto trained_at = std::filesystem::last_write_time(entry);

  // ... and the remaining experiments reuse it: the cache file is never
  // rewritten (a retrain would rewrite it).
  for (const std::string name : {"detection", "campaign"}) {
    registry.run(tiny_spec(name, dir.path()), context);
    EXPECT_EQ(std::filesystem::last_write_time(entry), trained_at)
        << name << " retrained the shared variant";
  }
}

// ---------------------------------------------------------------------------
// CLI error paths: every nonzero exit code, with its exact documented
// message where the text is load-bearing for scripts that parse it. Each
// test calls cli::run in-process; the guard restores the global config
// overrides cli::run installs.
// ---------------------------------------------------------------------------

/// Runs the CLI in-process with stdout/stderr captured.
struct CapturedCli {
  int exit_code;
  std::string stdout_text;
  std::string stderr_text;
};

CapturedCli run_cli_captured(const std::vector<std::string>& args) {
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const int rc = cli::run(args);
  return {rc, testing::internal::GetCapturedStdout(),
          testing::internal::GetCapturedStderr()};
}

TEST(CliErrorPaths, UnknownExperimentExitsTwoAndListsWhatIsRegistered) {
  config::ScopedOverrides guard(config::overrides());
  const CapturedCli result = run_cli_captured({"run", "susceptibilty"});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_EQ(result.stderr_text,
            "safelight: ExperimentRegistry: unknown experiment "
            "'susceptibilty' (registered: susceptibility, mitigation, "
            "robust_compare, detection, campaign)\n");
}

TEST(CliErrorPaths, UsageErrorsExitTwoWithTheDocumentedMessages) {
  config::ScopedOverrides guard(config::overrides());

  const CapturedCli missing_name = run_cli_captured({"run"});
  EXPECT_EQ(missing_name.exit_code, 2);
  EXPECT_EQ(missing_name.stderr_text,
            "safelight: 'safelight run' needs an experiment name (try "
            "'safelight list')\n");

  const CapturedCli bad_flag =
      run_cli_captured({"run", "susceptibility", "--frobnicate"});
  EXPECT_EQ(bad_flag.exit_code, 2);
  EXPECT_EQ(bad_flag.stderr_text,
            "safelight: unknown flag '--frobnicate' (see 'safelight "
            "help')\n");

  const CapturedCli bad_mode =
      run_cli_captured({"run", "susceptibility", "--fault-mode", "sometimes"});
  EXPECT_EQ(bad_mode.exit_code, 2);
  EXPECT_EQ(bad_mode.stderr_text,
            "safelight: unknown fault mode 'sometimes' (valid modes: none, "
            "independent, run_length, uniform)\n");
}

TEST(CliErrorPaths, UnwritableOutDirectoryExitsOneBeforeAnyWork) {
  config::ScopedOverrides guard(config::overrides());
  TempDir dir("cli_unwritable_out");
  // Root ignores permission bits, so an unwritable path is made by routing
  // the directory through a regular file (ENOTDIR) instead of chmod 000.
  const std::string blocker = dir.path() + "/blocker.txt";
  { std::ofstream(blocker) << "not a directory\n"; }
  const std::string bad_out = blocker + "/out";

  const CapturedCli result = run_cli_captured(
      {"run", "susceptibility", "--model", "cnn1", "--scale", "tiny",
       "--out", bad_out, "--zoo", dir.path() + "/zoo"});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_EQ(result.stderr_text,
            "safelight: cannot create output directory '" + bad_out + "': " +
                std::make_error_code(std::errc::not_a_directory).message() +
                " (pass a writable --out directory)\n");
  // It failed before training anything into the zoo.
  EXPECT_FALSE(std::filesystem::exists(dir.path() + "/zoo"));
}

TEST(CliErrorPaths, CancellationExitsOneThirtyWithTheResumeHint) {
  config::ScopedOverrides guard(config::overrides());
  TempDir dir("cli_cancel");
  // The deterministic stand-in for ^C mid-sweep: the flag is already set
  // when the sweep reaches its first cooperative checkpoint.
  cli::request_cancel();
  const CapturedCli result = run_cli_captured(
      {"run", "susceptibility", "--model", "cnn1", "--scale", "tiny",
       "--seeds", "1", "--out", dir.path() + "/out", "--zoo",
       dir.path() + "/zoo"});
  EXPECT_EQ(result.exit_code, 130);
  EXPECT_EQ(result.stderr_text,
            "safelight: experiment 'susceptibility' cancelled (completed "
            "scenarios stay cached; rerun the same command to resume)\n");
}

TEST(ExperimentSweep, CancellationAbortsBeforeWork) {
  TempDir dir("experiment_cancel");
  core::ModelZoo zoo(dir.path());
  core::RunContext context(zoo);
  std::atomic<bool> cancel{true};
  context.cancel = &cancel;
  EXPECT_THROW(core::ExperimentRegistry::global().run(
                   tiny_spec("susceptibility", dir.path()), context),
               core::ExperimentCancelled);
  // Nothing was trained or cached.
  EXPECT_FALSE(std::filesystem::exists(
      zoo.entry_path(tiny_setup(), core::variant_by_name("Original"))));
}

}  // namespace
}  // namespace safelight
