// Stress tests for the persistent worker pool behind parallel_for.
//
// The pool instances here are constructed with explicit thread counts, so
// these tests exercise real concurrency even when the host (or
// SAFELIGHT_THREADS) only grants one worker to the global pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"

namespace safelight {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t c) { hits[c]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroChunksIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ZeroThreadsRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  pool.run(ids.size(), [&](std::size_t c) { ids[c] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, DistributesAcrossThreads) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  // Chunks that block briefly force multiple threads to participate.
  pool.run(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    pool.run(32, [&](std::size_t c) {
      if (c == 7) throw std::runtime_error("boom");
      completed++;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing chunk still ran (the job completes before rethrow).
  EXPECT_EQ(completed.load(), 31);
}

TEST(ThreadPool, SurvivesManySubmissions) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 10000; ++round) {
    pool.run(4, [&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 40000u);
}

TEST(ThreadPool, ConcurrentSubmittersInterleaveSafely) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        pool.run(8, [&](std::size_t) { total++; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(total.load(), 4u * 200u * 8u);
}

TEST(ThreadPool, NestedParallelForInsidePoolWorkDegradesSerially) {
  // parallel_for inside a pool-executed chunk must run serially rather than
  // resubmitting to the (possibly same) pool — no deadlock, exact coverage.
  std::atomic<int> count{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 10, [&](std::size_t) { count++; }, 1);
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(ThreadPool, GlobalPoolMatchesWorkerCount) {
  EXPECT_EQ(ThreadPool::global().thread_count(), worker_count() - 1);
}

}  // namespace
}  // namespace safelight
