// Tests for the runtime attack-detection subsystem: detector unit behavior
// (canary signatures, range envelopes, thermal sentinels), the observing
// read-out hook's prefix-cache interaction, and the detection-evaluation
// sweep (zero false positives, AUC, latency, caching and resume).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>

#include "core/detection.hpp"
#include "core/evaluation.hpp"
#include "defense/suite.hpp"
#include "nn/serialize.hpp"
#include "test_util.hpp"

namespace safelight {
namespace {

using core::DetectionOptions;
using core::DetectionReport;
using core::ExperimentSetup;
using core::ModelZoo;

ExperimentSetup tiny_setup() {
  return core::experiment_setup(nn::ModelId::kCnn1, Scale::kTiny);
}

attack::AttackScenario scenario_of(attack::AttackVector vector,
                                   double fraction, std::uint64_t seed) {
  attack::AttackScenario scenario;
  scenario.vector = vector;
  scenario.target = attack::AttackTarget::kBothBlocks;
  scenario.fraction = fraction;
  scenario.seed = seed;
  return scenario;
}

/// One conditioned tiny deployment shared by the detector unit tests:
/// model + executor + mapping + clean snapshot, with helpers to attack and
/// restore it.
class Deployment {
 public:
  explicit Deployment(const std::string& zoo_dir)
      : setup_(tiny_setup()),
        zoo_(zoo_dir),
        model_(zoo_.get_or_train(setup_, core::variant_by_name("Original"))),
        executor_(setup_.accelerator),
        mapping_((executor_.condition_weights(*model_), *model_),
                 setup_.accelerator),
        clean_snapshot_(nn::snapshot_state(*model_)) {}

  defense::DeploymentView view(
      const std::vector<attack::BlockThermalState>* thermal = nullptr,
      std::uint64_t probe_seed = 0) {
    return defense::DeploymentView{*model_, executor_, thermal, probe_seed};
  }

  void attack(const attack::AttackScenario& scenario) {
    attack::apply_attack(mapping_, scenario, {});
  }

  void restore() { nn::restore_state(*model_, clean_snapshot_); }

  const ExperimentSetup& setup() const { return setup_; }

 private:
  ExperimentSetup setup_;
  ModelZoo zoo_;
  std::unique_ptr<nn::Sequential> model_;
  accel::OnnExecutor executor_;
  accel::WeightStationaryMapping mapping_;
  std::vector<nn::Tensor> clean_snapshot_;
};

// ------------------------------------------------------------- detectors

TEST(Detectors, CleanCheckNeverFlags) {
  TempDir dir("defense_clean");
  Deployment deployment(dir.path());
  defense::DetectorSuite suite(deployment.setup());
  suite.calibrate(deployment.view(nullptr, 1));

  for (std::uint64_t probe_seed : {2u, 3u, 4u}) {
    const auto results = suite.check_all(deployment.view(nullptr, probe_seed));
    ASSERT_EQ(results.size(), 3u);
    for (const auto& r : results) {
      EXPECT_FALSE(r.flagged) << r.detector << " seed " << probe_seed;
      EXPECT_EQ(r.first_flag_probe, 0u) << r.detector;
    }
  }
}

TEST(Detectors, CanaryAndRangeFlagActuation) {
  TempDir dir("defense_actuation");
  Deployment deployment(dir.path());
  defense::DetectorSuite suite(deployment.setup());
  suite.calibrate(deployment.view(nullptr, 1));

  deployment.attack(
      scenario_of(attack::AttackVector::kActuation, 0.10, 2000));
  const auto results = suite.check_all(deployment.view(nullptr, 9));

  const auto& canary = results[0];
  EXPECT_EQ(canary.detector, "canary");
  EXPECT_TRUE(canary.flagged);
  EXPECT_GT(canary.score, 0.0);
  EXPECT_GE(canary.first_flag_probe, 1u);

  const auto& range = results[1];
  EXPECT_EQ(range.detector, "range_monitor");
  EXPECT_TRUE(range.flagged);
  EXPECT_GT(range.score, 0.0);

  // Actuation is electro-optic: the thermal sentinel stays quiet.
  const auto& sentinel = results[2];
  EXPECT_EQ(sentinel.detector, "thermal_sentinel");
  EXPECT_FALSE(sentinel.flagged);
}

TEST(Detectors, SentinelFlagsHotspotTelemetry) {
  TempDir dir("defense_hotspot");
  Deployment deployment(dir.path());
  defense::DetectorSuite suite(deployment.setup());
  suite.calibrate(deployment.view(nullptr, 1));

  const auto scenario =
      scenario_of(attack::AttackVector::kHotspot, 0.10, 2001);
  deployment.attack(scenario);
  const auto telemetry = defense::scenario_telemetry(
      deployment.setup().accelerator, scenario);
  ASSERT_FALSE(telemetry.empty());

  const auto results = suite.check_all(deployment.view(&telemetry, 9));
  const auto& sentinel = results[2];
  EXPECT_TRUE(sentinel.flagged);
  EXPECT_GT(sentinel.score, suite.detector("thermal_sentinel").threshold());
  EXPECT_EQ(sentinel.first_flag_probe, 1u);
  EXPECT_TRUE(results[0].flagged);  // signatures diverge too
}

TEST(Detectors, ChecksDeterministicInProbeSeed) {
  TempDir dir("defense_determinism");
  Deployment deployment(dir.path());
  defense::DetectorSuite suite(deployment.setup());
  suite.calibrate(deployment.view(nullptr, 1));

  const auto a = suite.check_all(deployment.view(nullptr, 42));
  const auto b = suite.check_all(deployment.view(nullptr, 42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << a[i].detector;
  }
  // Different probe seeds read different sensor noise.
  const auto c = suite.check_all(deployment.view(nullptr, 43));
  EXPECT_NE(a[2].score, c[2].score);
}

TEST(Detectors, TelemetryEmptyForCleanAndActuation) {
  const auto setup = tiny_setup();
  EXPECT_TRUE(defense::scenario_telemetry(
                  setup.accelerator,
                  scenario_of(attack::AttackVector::kActuation, 0.10, 1))
                  .empty());
  attack::AttackScenario none;
  none.fraction = 0.0;
  EXPECT_TRUE(defense::scenario_telemetry(setup.accelerator, none).empty());
}

// ------------------------------------------- observing hooks vs the cache

TEST(ObservingHooks, KeepPrefixCacheAndResults) {
  TempDir dir("defense_observer_cache");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());

  // FC-only corruption: the conv prefix is clean, so the cache is eligible.
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kFcBlock;
  scenario.fraction = 0.10;
  scenario.seed = 77;

  auto baseline_model =
      zoo.get_or_train(setup, core::variant_by_name("Original"));
  core::AttackEvaluator baseline(setup, *baseline_model, "Original", "");
  baseline.set_prefix_cache(true);
  const double expected = baseline.evaluate_scenario(scenario);
  ASSERT_GT(baseline.prefix_hits(), 0u);

  // An observing hook must not force the slow path — and must not change
  // the measured accuracy.
  auto observed_model =
      zoo.get_or_train(setup, core::variant_by_name("Original"));
  core::AttackEvaluator observed(setup, *observed_model, "Original", "");
  observed.set_prefix_cache(true);
  std::size_t hook_calls = 0;
  observed.executor().set_readout_hook(
      [&hook_calls](nn::Tensor&, accel::BlockKind, float) { ++hook_calls; },
      accel::ReadoutHookKind::kObserving);
  EXPECT_TRUE(observed.executor().has_readout_hook());
  EXPECT_FALSE(observed.executor().has_mutating_readout_hook());
  EXPECT_DOUBLE_EQ(observed.evaluate_scenario(scenario), expected);
  EXPECT_GT(observed.prefix_hits(), 0u);
  EXPECT_GT(hook_calls, 0u);

  // A mutating hook (even a no-op one) must disable the cache: the
  // evaluator cannot know it leaves tensors untouched.
  auto mutating_model =
      zoo.get_or_train(setup, core::variant_by_name("Original"));
  core::AttackEvaluator mutating(setup, *mutating_model, "Original", "");
  mutating.set_prefix_cache(true);
  mutating.executor().set_readout_hook(
      [](nn::Tensor&, accel::BlockKind, float) {});
  EXPECT_TRUE(mutating.executor().has_mutating_readout_hook());
  EXPECT_DOUBLE_EQ(mutating.evaluate_scenario(scenario), expected);
  EXPECT_EQ(mutating.prefix_hits(), 0u);
}

// ------------------------------------------------------- detection sweep

std::vector<attack::AttackScenario> sweep_grid() {
  return attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kBothBlocks}, {0.05, 0.10}, 2, 500);
}

TEST(DetectionSweep, ZeroFalsePositivesAndAucAboveChance) {
  TempDir dir("detection_sweep");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());

  DetectionOptions options;
  options.clean_runs = 4;
  const DetectionReport report = core::run_detection_sweep(
      setup, zoo, core::variant_by_name("Original"), sweep_grid(), options);

  const std::size_t runs = options.clean_runs + sweep_grid().size();
  ASSERT_EQ(report.rows.size(), runs * 3u);
  ASSERT_EQ(report.detectors.size(), 3u);

  for (const std::string& detector : report.detectors) {
    // Zero false positives at the default thresholds.
    EXPECT_DOUBLE_EQ(report.false_positive_rate(detector), 0.0) << detector;
    // Pooled over both attack vectors at >= 5 % intensity, every detector
    // separates attack from clean better than chance.
    EXPECT_GT(report.auc(detector, std::nullopt, 0.05), 0.5) << detector;
  }

  // The recompute- and read-out-based detectors work per vector too.
  for (const std::string& detector : {std::string("canary"),
                                      std::string("range_monitor")}) {
    EXPECT_GT(report.auc(detector, attack::AttackVector::kActuation, 0.05),
              0.5)
        << detector;
    EXPECT_GT(report.auc(detector, attack::AttackVector::kHotspot, 0.05),
              0.5)
        << detector;
  }
  // The sentinel is the thermal specialist.
  EXPECT_GT(report.auc("thermal_sentinel", attack::AttackVector::kHotspot,
                       0.05),
            0.5);
  EXPECT_DOUBLE_EQ(
      report.true_positive_rate("canary", std::nullopt, 0.05), 1.0);

  // Latency: every flagged run records a positive probes-to-flag count.
  const BoxStats latency = report.detection_latency("canary");
  EXPECT_GE(latency.min, 1.0);

  // ROC curves are monotone from (0,0)-ish to exactly (1,1).
  for (const std::string& detector : report.detectors) {
    const core::RocCurve curve = report.roc(detector, std::nullopt, 0.05);
    ASSERT_GE(curve.points.size(), 2u);
    for (std::size_t i = 1; i < curve.points.size(); ++i) {
      EXPECT_GE(curve.points[i].tpr, curve.points[i - 1].tpr);
      EXPECT_GE(curve.points[i].fpr, curve.points[i - 1].fpr);
      EXPECT_GT(curve.points[i - 1].threshold, curve.points[i].threshold);
    }
    EXPECT_DOUBLE_EQ(curve.points.back().tpr, 1.0);
    EXPECT_DOUBLE_EQ(curve.points.back().fpr, 1.0);
    EXPECT_GE(curve.auc, 0.0);
    EXPECT_LE(curve.auc, 1.0);
  }
}

TEST(DetectionSweep, CachesAndResumesDeterministically) {
  TempDir dir("detection_resume");
  const ExperimentSetup setup = tiny_setup();
  ModelZoo zoo(dir.path());

  DetectionOptions options;
  options.clean_runs = 2;
  options.cache_dir = dir.path();
  const auto grid = attack::scenario_grid(
      {attack::AttackVector::kActuation}, {attack::AttackTarget::kBothBlocks},
      {0.10}, 2, 600);

  const DetectionReport first = core::run_detection_sweep(
      setup, zoo, core::variant_by_name("Original"), grid, options);
  EXPECT_EQ(first.evaluated, options.clean_runs + grid.size());
  EXPECT_EQ(first.cache_hits, 0u);

  // A fresh sweep (new process in real life) re-evaluates nothing and
  // reproduces every score exactly.
  const DetectionReport second = core::run_detection_sweep(
      setup, zoo, core::variant_by_name("Original"), grid, options);
  EXPECT_EQ(second.evaluated, 0u);
  EXPECT_EQ(second.cache_hits, options.clean_runs + grid.size());
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.rows[i].score, first.rows[i].score)
        << first.rows[i].run_id << "/" << first.rows[i].detector;
    EXPECT_EQ(second.rows[i].first_flag_probe, first.rows[i].first_flag_probe);
    EXPECT_TRUE(second.rows[i].from_cache);
  }

  // Interrupt simulation: drop the last rows of the store so one run is
  // only partially persisted. That run must re-check (a partial run must
  // never be served as cached), and it reproduces the original scores.
  std::string store_file;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().string().find(".detect.csv") != std::string::npos) {
      store_file = entry.path().string();
    }
  }
  ASSERT_FALSE(store_file.empty());
  std::vector<std::string> lines;
  {
    std::ifstream in(store_file);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  lines.resize(lines.size() - 2);  // torn mid-run: last detector's rows gone
  {
    std::ofstream out(store_file, std::ios::trunc);
    for (const auto& line : lines) out << line << '\n';
  }
  const DetectionReport third = core::run_detection_sweep(
      setup, zoo, core::variant_by_name("Original"), grid, options);
  EXPECT_EQ(third.evaluated, 1u);
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(third.rows[i].score, first.rows[i].score)
        << first.rows[i].run_id << "/" << first.rows[i].detector;
  }
}

TEST(DetectionSweep, RankAucHandlesOrderAndTies) {
  EXPECT_DOUBLE_EQ(core::rank_auc({0.0, 0.0}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(core::rank_auc({1.0}, {1.0}), 0.5);
  EXPECT_DOUBLE_EQ(core::rank_auc({2.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(core::rank_auc({0.0, 1.0}, {0.5}), 0.5);
  EXPECT_THROW(core::rank_auc({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(core::rank_auc({1.0}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace safelight
