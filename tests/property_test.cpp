// Property-style parameterized sweeps over the simulator's invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attacks/actuation.hpp"
#include "attacks/corruption.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "photonics/converters.hpp"
#include "photonics/microring.hpp"
#include "photonics/tuning.hpp"
#include "thermal/solver.hpp"

namespace safelight {
namespace {

// ------------------------------------------------ actuation fraction sweep

class ActuationFractionProperty : public ::testing::TestWithParam<double> {};

TEST_P(ActuationFractionProperty, VictimCountTracksFraction) {
  const double fraction = GetParam();
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{4, 4, 8};  // 128 slots
  config.fc = accel::BlockDims{2, 6, 12};   // 144 slots

  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kBothBlocks;
  scenario.fraction = fraction;
  scenario.seed = 17;
  const auto trojans = attack::plan_actuation_attack(config, scenario);
  const double population = 128.0 + 144.0;
  EXPECT_EQ(trojans.size(),
            static_cast<std::size_t>(std::llround(fraction * population)));
}

TEST_P(ActuationFractionProperty, CorruptedWeightFractionMatches) {
  // For a model saturating every slot across passes, the corrupted-weight
  // fraction equals the attacked-slot fraction (each slot serves the same
  // number of weights, modulo the final partial pass).
  const double fraction = GetParam();
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(2, 8, 3, 1, 1, rng, /*bias=*/false);  // 144 w
  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{2, 3, 4};  // 24 slots -> 6 passes
  config.fc = accel::BlockDims{1, 1, 1};

  accel::WeightStationaryMapping mapping(model, config);
  attack::AttackScenario scenario;
  scenario.vector = attack::AttackVector::kActuation;
  scenario.target = attack::AttackTarget::kConvBlock;
  scenario.fraction = fraction;
  scenario.seed = 29;
  const auto stats = attack::apply_attack(mapping, scenario);
  const double expected =
      fraction * static_cast<double>(mapping.weight_count(
                     accel::BlockKind::kConv));
  // Allow rounding (victims round to whole slots serving 6 weights each)
  // plus rare already-at-stuck-value weights.
  EXPECT_NEAR(static_cast<double>(stats.corrupted_weights), expected,
              6.0 + 0.05 * expected);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ActuationFractionProperty,
                         ::testing::Values(0.0, 0.01, 0.05, 0.10, 0.25,
                                           0.5));

// ------------------------------------------------ mapping dimension sweep

struct MappingCase {
  std::size_t units, banks, mrs, conv_out;
};

class MappingProperty : public ::testing::TestWithParam<MappingCase> {};

TEST_P(MappingProperty, SlotAddressingInvariants) {
  const MappingCase c = GetParam();
  Rng rng(7);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(3, c.conv_out, 3, 1, 1, rng, /*bias=*/false);
  model.emplace<nn::Flatten>();

  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{c.units, c.banks, c.mrs};
  accel::WeightStationaryMapping mapping(model, config);

  const std::size_t count = mapping.weight_count(accel::BlockKind::kConv);
  EXPECT_EQ(count, c.conv_out * 27);
  const std::size_t slots = config.conv.slot_count();
  EXPECT_EQ(mapping.passes(accel::BlockKind::kConv),
            (count + slots - 1) / slots);

  // Sum of per-slot weight counts covers every weight exactly once.
  std::size_t covered = 0;
  for (std::size_t flat = 0; flat < slots; ++flat) {
    const auto addr =
        accel::slot_from_flat(config.conv, accel::BlockKind::kConv, flat);
    covered += mapping.weights_on_slot(addr).size();
  }
  EXPECT_EQ(covered, count);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, MappingProperty,
    ::testing::Values(MappingCase{1, 1, 8, 2}, MappingCase{2, 3, 4, 4},
                      MappingCase{3, 2, 5, 16}, MappingCase{5, 4, 20, 3},
                      MappingCase{2, 2, 2, 32}));

// ------------------------------------------------ quantizer bits sweep

class QuantizerBitsProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizerBitsProperty, ErrorBoundedByHalfStep) {
  const unsigned bits = GetParam();
  const phot::Quantizer q(phot::QuantizerConfig{bits, -1.0, 1.0});
  Rng rng(bits);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    EXPECT_LE(std::abs(q.quantize(v) - v), q.max_error() + 1e-12);
  }
}

TEST_P(QuantizerBitsProperty, MoreBitsSmallerStep) {
  const unsigned bits = GetParam();
  if (bits >= 16) return;
  const phot::Quantizer coarse(phot::QuantizerConfig{bits, -1.0, 1.0});
  const phot::Quantizer fine(phot::QuantizerConfig{bits + 1, -1.0, 1.0});
  EXPECT_GT(coarse.max_error(), fine.max_error());
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizerBitsProperty,
                         ::testing::Values(2u, 4u, 6u, 8u, 10u, 12u, 16u));

// ------------------------------------------------ microring Q sweep

class MicroringQProperty : public ::testing::TestWithParam<double> {};

TEST_P(MicroringQProperty, FwhmAndInversionHold) {
  phot::MrGeometry geometry;
  geometry.q_factor = GetParam();
  phot::Microring ring(geometry, 1550.0);
  EXPECT_NEAR(ring.fwhm_nm(), 1550.0 / GetParam(), 1e-12);
  for (double target : {0.05, 0.5, 0.9}) {
    ring.imprint_weight(target);
    EXPECT_NEAR(ring.transmission(1550.0), target, 1e-9);
  }
  // Imprint detunings stay within the EO actuation range for the Q values
  // the accelerator uses (physical realizability; low-Q rings would need
  // more range, which is why the blocks use Q >= 20k).
  if (GetParam() >= 20'000.0) {
    ring.imprint_weight(0.97);
    EXPECT_LT(ring.detuning_nm(), phot::eo_tuning().max_range_nm);
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, MicroringQProperty,
                         ::testing::Values(5'000.0, 20'000.0, 50'000.0,
                                           150'000.0));

// ------------------------------------------------ thermal grid size sweep

class ThermalSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThermalSizeProperty, PeakRiseStableAcrossGridSizes) {
  // With boundaries several decay lengths away, the source-cell rise must
  // not depend on the grid size (the solution is localized).
  const std::size_t side = GetParam();
  thermal::GridConfig config;
  config.rows = side;
  config.cols = side;
  thermal::ThermalGrid grid(config);
  grid.add_power_mw(side / 2, side / 2, 45.0);
  ASSERT_TRUE(thermal::solve_steady_state(grid).converged);
  const double peak = grid.delta_t(side / 2, side / 2);
  // Reference from a 41x41 solve.
  thermal::GridConfig ref_config;
  ref_config.rows = ref_config.cols = 41;
  thermal::ThermalGrid ref(ref_config);
  ref.add_power_mw(20, 20, 45.0);
  ASSERT_TRUE(thermal::solve_steady_state(ref).converged);
  EXPECT_NEAR(peak, ref.delta_t(20, 20), 0.02 * ref.delta_t(20, 20));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThermalSizeProperty,
                         ::testing::Values(25u, 31u, 51u, 61u));

// ------------------------------------------------ scenario grid sweep

class ScenarioGridProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ScenarioGridProperty, SizeIsCartesianProduct) {
  const auto [fraction_count, seed_count] = GetParam();
  std::vector<double> fractions;
  for (std::size_t i = 1; i <= fraction_count; ++i) {
    fractions.push_back(0.01 * static_cast<double>(i));
  }
  const auto grid = attack::scenario_grid(
      {attack::AttackVector::kActuation, attack::AttackVector::kHotspot},
      {attack::AttackTarget::kConvBlock, attack::AttackTarget::kFcBlock},
      fractions, seed_count);
  EXPECT_EQ(grid.size(), 2u * 2u * fraction_count * seed_count);
}

INSTANTIATE_TEST_SUITE_P(Grids, ScenarioGridProperty,
                         ::testing::Combine(::testing::Values(1u, 3u, 5u),
                                            ::testing::Values(1u, 4u, 10u)));

// ------------------------------------------------ corruption robustness

class CorruptionFuzzProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CorruptionFuzzProperty, NeverProducesNonFiniteWeights) {
  Rng rng(GetParam());
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 3, 3, 1, 1, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Flatten>();
  model.emplace<nn::Linear>(3 * 36, 5, rng);

  accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
  config.conv = accel::BlockDims{2, 2, 5};
  config.fc = accel::BlockDims{1, 4, 15};
  accel::WeightStationaryMapping mapping(model, config);

  Rng fuzz(GetParam() * 977 + 1);
  for (int round = 0; round < 6; ++round) {
    attack::AttackScenario scenario;
    scenario.vector = fuzz.bernoulli(0.5) ? attack::AttackVector::kActuation
                                          : attack::AttackVector::kHotspot;
    const int target = static_cast<int>(fuzz.uniform_int(0, 2));
    scenario.target = static_cast<attack::AttackTarget>(target);
    scenario.fraction = fuzz.uniform(0.0, 1.0);
    scenario.seed = fuzz.next_u64();
    attack::apply_attack(mapping, scenario);
    for (nn::Param* p : model.params()) {
      EXPECT_TRUE(p->value.all_finite()) << scenario.id();
    }
    // Model still produces finite logits.
    const nn::Tensor out = model.forward(nn::Tensor({1, 1, 6, 6}), false);
    EXPECT_TRUE(out.all_finite()) << scenario.id();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzzProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------ rng stream independence

TEST(RngStreamProperty, AdjacentDerivedSeedsProduceDisjointStreams) {
  // Sweeps hand out consecutive small integers as stream ids (base_seed + i,
  // placement s, s + 1, ...); seed_combine's splitmix64 mixing must turn
  // them into streams that neither agree at any position nor revisit each
  // other's values within a realistic draw budget. A regression to additive
  // seeding (engine(base + s)) fails the positionwise check immediately.
  constexpr std::size_t kDraws = 4096;
  for (const std::uint64_t base : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    for (const std::uint64_t stream : {0ULL, 1ULL, 7ULL}) {
      SCOPED_TRACE("base=" + std::to_string(base) +
                   " stream=" + std::to_string(stream));
      Rng a(seed_combine(base, stream));
      Rng b(seed_combine(base, stream + 1));
      std::set<std::uint64_t> seen_a;
      std::size_t positionwise_equal = 0;
      std::vector<std::uint64_t> draws_b;
      draws_b.reserve(kDraws);
      for (std::size_t i = 0; i < kDraws; ++i) {
        const std::uint64_t va = a.next_u64();
        const std::uint64_t vb = b.next_u64();
        seen_a.insert(va);
        draws_b.push_back(vb);
        positionwise_equal += (va == vb) ? 1 : 0;
      }
      EXPECT_EQ(positionwise_equal, 0u);
      std::size_t overlap = 0;
      for (const std::uint64_t vb : draws_b) overlap += seen_a.count(vb);
      EXPECT_EQ(overlap, 0u);
    }
  }
  // Sanity: the same derived seed replays the identical stream.
  Rng c(seed_combine(42, 7));
  Rng d(seed_combine(42, 7));
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
}

TEST(RngStreamProperty, AttackPlanIsInvariantAcrossThreadConfig) {
  // Stochastic components draw only from explicit scenario seeds, never
  // from worker identity: the same plan must come out whether the process
  // is configured for 1 or 8 worker threads (the bit-reproducibility
  // contract behind resume and the golden files).
  auto plan_with_threads = [](std::size_t threads) {
    config::Overrides overrides = config::overrides();
    overrides.threads = threads;
    config::ScopedOverrides guard(overrides);
    accel::AcceleratorConfig config = accel::AcceleratorConfig::crosslight();
    attack::AttackScenario scenario;
    scenario.vector = attack::AttackVector::kActuation;
    scenario.target = attack::AttackTarget::kBothBlocks;
    scenario.fraction = 0.10;
    scenario.seed = 23;
    return attack::plan_actuation_attack(config, scenario);
  };
  const auto single = plan_with_threads(1);
  const auto pooled = plan_with_threads(8);
  ASSERT_FALSE(single.empty());
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_TRUE(single[i].victim_slot == pooled[i].victim_slot)
        << "trojan " << i << ": " << single[i].victim_slot.to_string()
        << " vs " << pooled[i].victim_slot.to_string();
    EXPECT_EQ(single[i].payload, pooled[i].payload);
    EXPECT_EQ(single[i].triggered, pooled[i].triggered);
  }
}

}  // namespace
}  // namespace safelight
