// Shared GoogleTest helpers for the SafeLight suite.
#pragma once

#include <filesystem>
#include <string>

namespace safelight {

/// Unique temp directory per test to keep cache state (zoo models, result
/// stores) isolated; removed again on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_("/tmp/safelight_test_" + name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace safelight
