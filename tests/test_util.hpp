// Shared GoogleTest helpers for the SafeLight suite.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

namespace safelight {

/// Unique temp directory per test to keep cache state (zoo models, result
/// stores) isolated; removed again on destruction. The pid suffix keeps
/// concurrent ctest processes (ctest -j runs one process per test case)
/// from clobbering each other when two cases use the same name — e.g. the
/// dist suite's shared single-process reference directory.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_("/tmp/safelight_test_" + name + "_" +
              std::to_string(::getpid())) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Reaps `pid` with a deadline instead of blocking forever: polls
/// waitpid(WNOHANG) and, past `timeout_s`, SIGKILLs the child, reaps it,
/// and returns false. A hung child process turns into a test failure with
/// a diagnosis, never into a hung test binary.
inline bool wait_with_timeout(pid_t pid, double timeout_s, int* status) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (true) {
    const pid_t reaped = ::waitpid(pid, status, WNOHANG);
    if (reaped == pid) return true;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, status, 0);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct ProcessResult {
  int exit_code = -1;    // WEXITSTATUS when exited; -1 otherwise
  int term_signal = 0;   // WTERMSIG when signalled
  bool timed_out = false;
  std::string stdout_text;
  std::string stderr_text;
};

/// Fork/execs `argv[0]` with `argv`, captures stdout/stderr to files under
/// `capture_dir`, and waits at most `timeout_s` (SIGKILL + diagnostics on
/// expiry — the captured output is returned either way). `extra_env` sets
/// additional "KEY=value" entries in the child. When `kill_signal` is
/// nonzero it is delivered to the child after `kill_after_s` seconds — the
/// seam for signal-handling tests (SIGTERM -> graceful exit 130).
inline ProcessResult run_process(const std::vector<std::string>& argv,
                                 const std::vector<std::string>& extra_env,
                                 const std::string& capture_dir,
                                 double timeout_s, double kill_after_s = 0.0,
                                 int kill_signal = 0) {
  const std::string stdout_path =
      capture_dir + "/proc_" + std::to_string(::getpid()) + ".stdout";
  const std::string stderr_path =
      capture_dir + "/proc_" + std::to_string(::getpid()) + ".stderr";

  std::vector<std::string> args = argv;
  std::vector<char*> child_argv;
  child_argv.reserve(args.size() + 1);
  for (std::string& arg : args) child_argv.push_back(arg.data());
  child_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  ProcessResult result;
  if (pid < 0) return result;
  if (pid == 0) {
    const int out = ::open(stdout_path.c_str(),
                           O_CREAT | O_WRONLY | O_TRUNC, 0644);
    const int err = ::open(stderr_path.c_str(),
                           O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (out >= 0) ::dup2(out, 1);
    if (err >= 0) ::dup2(err, 2);
    for (const std::string& entry : extra_env) {
      const std::size_t eq = entry.find('=');
      if (eq != std::string::npos) {
        ::setenv(entry.substr(0, eq).c_str(), entry.substr(eq + 1).c_str(),
                 1);
      }
    }
    ::execv(child_argv[0], child_argv.data());
    ::_exit(127);
  }

  if (kill_signal != 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(kill_after_s));
    ::kill(pid, kill_signal);
  }
  int status = 0;
  result.timed_out = !wait_with_timeout(pid, timeout_s, &status);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  if (WIFSIGNALED(status)) result.term_signal = WTERMSIG(status);
  result.stdout_text = read_file_bytes(stdout_path);
  result.stderr_text = read_file_bytes(stderr_path);
  return result;
}

}  // namespace safelight
